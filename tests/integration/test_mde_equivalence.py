"""The deduplication engine must be result-invisible (DESIGN.md §11).

Every MDE layer — the propagation-batch memo, the cross-rung shared
interner, the memory-mapped arena — only changes *how much work* a solve
repeats, never what it computes.  These tests pin that down bit-for-bit:
MDE-on against MDE-off serially, across the degradation ladder's shared
engine, on sharded workers attached to an arena, and on a warm run
reattaching a previous run's arena.
"""

import pytest

from repro.bench.workloads import suite_program
from repro.datastructs.mde import MdeEngine
from repro.parallel.driver import solve_parallel
from repro.pipeline import AnalysisPipeline

SOURCE_NAME = "du"


@pytest.fixture(scope="module")
def module():
    return suite_program(SOURCE_NAME)


@pytest.fixture(scope="module")
def baseline(module):
    """MDE-off serial results: the ground truth everything must match."""
    pipeline = AnalysisPipeline(module, mde_batch=False)
    return {"sfs": pipeline.sfs(), "vsfs": pipeline.vsfs()}


def assert_identical(result, reference):
    assert result._pt == reference._pt
    assert ({(call.id, callee.name)
             for call, callee in result.callgraph.call_edges()}
            == {(call.id, callee.name)
                for call, callee in reference.callgraph.call_edges()})


class TestSerialEquivalence:
    @pytest.mark.parametrize("analysis", ["sfs", "vsfs"])
    @pytest.mark.parametrize("delta", [True, False])
    def test_batch_memo_is_result_invisible(self, module, baseline,
                                            analysis, delta):
        off = AnalysisPipeline(module, mde_batch=False)
        on = AnalysisPipeline(module, mde_batch=True)
        solve_off = off.sfs if analysis == "sfs" else off.vsfs
        solve_on = on.sfs if analysis == "sfs" else on.vsfs
        want = solve_off(delta=delta)
        got = solve_on(delta=delta)
        assert_identical(got, want)
        assert got.stats.mde_batch and not want.stats.mde_batch
        assert got.stats.batch_memo_hits + got.stats.batch_memo_misses > 0
        # The exact union/propagation counters are part of the paper's
        # tables; the memo must not change what the kernel *counts*.
        assert got.stats.unions == want.stats.unions
        assert got.stats.propagations == want.stats.propagations
        assert got.stats.stored_ptsets == want.stats.stored_ptsets

    def test_memory_surface_is_populated(self, module):
        result = AnalysisPipeline(module).vsfs()
        stats = result.stats
        assert stats.interner_entries > 0
        assert stats.dedup_resident_bytes > 0
        assert stats.batch_cache_entries > 0
        assert stats.batch_memo_hit_rate() >= 0.0


class TestLadderSharing:
    def test_rungs_share_one_engine(self, module, baseline):
        """A vsfs solve then an sfs solve on the same pipeline (the
        ladder's fallback shape) reuse one interner — and still match
        the cold MDE-off baselines exactly."""
        pipeline = AnalysisPipeline(module)
        vsfs = pipeline.vsfs()
        engine = pipeline.engine.ctx.mde
        assert isinstance(engine, MdeEngine)
        interned_after_vsfs = engine.repo.size
        sfs = pipeline.sfs()
        assert pipeline.engine.ctx.mde is engine  # same engine, not a new one
        assert_identical(vsfs, baseline["vsfs"])
        assert_identical(sfs, baseline["sfs"])
        # The sfs rung started from the vsfs rung's interner, not empty.
        assert engine.repo.size >= interned_after_vsfs
        assert sfs.stats.interner_entries == engine.repo.size

    def test_ladder_fallback_matches_plain_sfs(self, module, baseline):
        """Force vsfs to degrade to sfs under a step budget: the fallback
        rung rides the shared engine and must equal a plain sfs solve."""
        from repro.pipeline import analyze
        from repro.runtime.budget import Budget

        result = analyze(module, analysis="vsfs",
                         budget=Budget(max_steps=3), fallback=True)
        if result.precision_level == "sfs":
            assert_identical(result, baseline["sfs"])
        elif result.precision_level == "vsfs":  # pragma: no cover - tiny input
            assert_identical(result, baseline["vsfs"])


class TestArenaEquivalence:
    @pytest.mark.parametrize("level", ["sfs", "vsfs"])
    def test_parallel_with_arena_matches_serial_off(self, tmp_path, module,
                                                    baseline, level):
        pipeline = AnalysisPipeline(module)
        svfg = pipeline.svfg()
        versioning = (pipeline.versioning() if level == "vsfs" else None)
        mde = MdeEngine.open(str(tmp_path / "arena.bin"))
        try:
            result = solve_parallel(svfg.copy(), level, jobs=2,
                                    versioning=versioning, mde=mde)
        finally:
            if mde.arena is not None:
                mde.arena.close()
        assert_identical(result, baseline[level])
        arena_info = result.parallel.arena
        assert arena_info is not None
        assert arena_info["masks"] > 1
        assert arena_info["appended"] > 0

    def test_warm_arena_reattach_is_identical(self, tmp_path, module,
                                              baseline):
        path = str(tmp_path / "arena.bin")
        cold = AnalysisPipeline(module, arena_path=path)
        cold_result = cold.vsfs()
        cold.engine.ctx.mde.arena.close()

        warm = AnalysisPipeline(module, arena_path=path)
        warm_result = warm.vsfs()
        engine = warm.engine.ctx.mde
        assert engine.arena_preloaded > 1  # previous run's masks came back
        engine.arena.close()
        assert_identical(warm_result, cold_result)
        assert_identical(warm_result, baseline["vsfs"])
        # Warm interning shows up as arena gauges on the stats surface.
        assert warm_result.stats.arena_masks > 1
        assert warm_result.stats.arena_resident_bytes > 0
