"""The always-on analysis daemon, end to end (DESIGN.md §13).

The service contract: every wire response is a typed JSON envelope —
overload sheds, deadline misses, injected faults and worker crashes all
classify; a warm restart answers bit-identically to a cold boot; drain
is graceful (in-flight finish, queued requests get a typed retry hint).
"""

import io
import json
import threading
import urllib.request

import pytest

from repro.chaos import (
    DaemonRun,
    _classify_response,
    _daemon_sound,
    _normalize_response,
    _sound_superset,
    execute_daemon_run,
)
from repro.runtime.faults import FaultPlan
from repro.service.protocol import Response
from repro.service.server import AnalysisService, ServiceConfig
from repro.service.transport import serve_http, serve_stdio

SOURCE = """
int x; int y; int z;
int *sel(int *a, int *b, int c) { if (c) { return a; } return b; }
int main(int c) {
    int *p = sel(&x, &y, c);
    int *q = p;
    if (c) { q = &z; }
    int v = *q;
    return v;
}
"""


def _service(**overrides) -> AnalysisService:
    config = ServiceConfig(default_deadline_s=None, workers=2, **overrides)
    return AnalysisService(config).start()


def _ask(service, payload):
    return service.handle_line(json.dumps(payload))


@pytest.fixture
def service():
    svc = _service()
    yield svc
    svc.drain(reply_grace_s=10.0)


class TestQueryOps:
    def test_mixed_burst_all_typed_and_ok(self, service):
        analyze = _ask(service, {"op": "analyze", "id": "a",
                                 "program": SOURCE, "analysis": "vsfs"})
        assert analyze.ok, analyze.error
        assert analyze.result["masks"]
        variables = analyze.result["variables"]
        assert variables

        alias = _ask(service, {"op": "alias", "program": SOURCE,
                               "params": {"a": variables[0],
                                          "b": variables[-1]}})
        assert alias.ok, alias.error
        assert isinstance(alias.result["may_alias"], bool)

        nullderef = _ask(service, {"op": "nullderef", "program": SOURCE})
        assert nullderef.ok, nullderef.error
        assert "warnings" in nullderef.result

        sliced = None
        for name in variables:
            candidate = _ask(service, {"op": "slice", "program": SOURCE,
                                       "params": {"var": name}})
            if candidate.ok:
                sliced = candidate
                break
        assert sliced is not None, "no variable produced a slice"
        assert sliced.result["nodes"]

    def test_second_analyze_is_memoised(self, service):
        first = _ask(service, {"op": "analyze", "program": SOURCE})
        second = _ask(service, {"op": "analyze", "program": SOURCE})
        assert first.ok and second.ok
        assert second.cached is True
        assert second.result["masks"] == first.result["masks"]

    def test_ssa_prefix_variable_resolution(self, service):
        """User-facing names resolve to their post-SSA versions; unknown
        names get a typed InvalidRequest listing what exists."""
        analyze = _ask(service, {"op": "analyze", "program": SOURCE})
        versioned = [v for v in analyze.result["variables"] if "." in v]
        if versioned:
            bare = versioned[0].split(".")[0]
            response = _ask(service, {"op": "alias", "program": SOURCE,
                                      "params": {"a": bare, "b": bare}})
            assert response.ok, response.error
        bogus = _ask(service, {"op": "alias", "program": SOURCE,
                               "params": {"a": "no_such_var", "b": "x"}})
        assert not bogus.ok
        assert bogus.error["type"] == "InvalidRequest"
        assert "known" in bogus.error["message"]

    def test_ping_and_stats_inline(self, service):
        assert _ask(service, {"op": "ping"}).ok
        stats = _ask(service, {"op": "stats"})
        assert stats.ok
        assert stats.result["queue"]["depth"] >= 0
        assert stats.result["workers"]["workers"] == 2

    def test_decode_error_is_typed_on_the_wire(self, service):
        response = service.handle_line("this is not json")
        assert not response.ok
        assert response.error["type"] == "InvalidRequest"


class TestAdmissionControl:
    def test_expired_deadline_is_typed_queue_rejection(self, service):
        response = _ask(service, {"op": "analyze", "program": SOURCE,
                                  "deadline_s": 1e-6})
        assert not response.ok
        assert response.error["type"] == "DeadlineExceeded"
        assert response.error["phase"] in ("queue", "execute")

    def test_overload_sheds_with_retry_hint(self):
        # A pool that never starts: the queue fills and the bound bites.
        service = AnalysisService(ServiceConfig(queue_depth=1,
                                                default_deadline_s=None))
        first = service.submit(json.dumps({"op": "analyze",
                                           "program": SOURCE}))
        assert not isinstance(first, Response)  # admitted ticket
        shed = service.submit(json.dumps({"op": "analyze",
                                          "program": SOURCE}))
        assert isinstance(shed, Response) and not shed.ok
        assert shed.error["type"] == "ServiceOverloaded"
        assert shed.error["retry_after_s"] > 0
        service.drain(reply_grace_s=1.0)
        assert not first.wait(timeout=1.0).ok  # evicted with a typed reply

    def test_tenant_quota_isolates_noisy_neighbour(self):
        from repro.service.admission import TenantPolicy

        service = AnalysisService(ServiceConfig(
            queue_depth=16, default_deadline_s=None,
            tenants={"noisy": TenantPolicy(max_queued=1)}))
        admitted = service.submit(json.dumps(
            {"op": "analyze", "program": SOURCE, "tenant": "noisy"}))
        shed = service.submit(json.dumps(
            {"op": "analyze", "program": SOURCE, "tenant": "noisy"}))
        assert isinstance(shed, Response)
        assert shed.error["type"] == "ServiceOverloaded"
        quiet = service.submit(json.dumps(
            {"op": "analyze", "program": SOURCE, "tenant": "quiet"}))
        assert not isinstance(quiet, Response)
        service.drain(reply_grace_s=1.0)
        admitted.wait(timeout=1.0)
        quiet.wait(timeout=1.0)


class TestFaultAbsorption:
    def test_worker_exec_fault_heals_on_retry(self):
        plan = FaultPlan(point="worker_exec")  # once=True
        service = _service(faults=plan)
        try:
            response = _ask(service, {"op": "analyze", "program": SOURCE})
            assert response.ok, response.error
            assert response.retries >= 1
            assert plan.fired
        finally:
            service.drain(reply_grace_s=10.0)

    def test_cache_attach_fault_serves_cacheless(self, tmp_path):
        plan = FaultPlan(point="cache_attach")
        service = _service(store_dir=str(tmp_path / "store"), faults=plan)
        try:
            response = _ask(service, {"op": "analyze", "program": SOURCE})
            assert response.ok, response.error
            assert response.heals >= 1
            assert plan.fired
        finally:
            service.drain(reply_grace_s=10.0)

    def test_queue_admit_fault_is_a_shed(self):
        plan = FaultPlan(point="queue_admit")
        service = _service(faults=plan)
        try:
            shed = _ask(service, {"op": "analyze", "program": SOURCE})
            assert not shed.ok
            assert shed.error["type"] == "ServiceOverloaded"
            retry = _ask(service, {"op": "analyze", "program": SOURCE})
            assert retry.ok, retry.error  # disarmed: service still alive
        finally:
            service.drain(reply_grace_s=10.0)


class TestBreakerIntegration:
    def test_repeat_precision_loss_trips_and_pins(self):
        # A solver fault that keeps firing: every solve degrades to the
        # Andersen floor (sound but precision-lost), which the breaker
        # counts as a failure and eventually pins the program down-rung.
        plan = FaultPlan(point="pre_meld", probability=1.0, once=False)
        service = _service(faults=plan, breaker_threshold=2,
                           breaker_cooldown_s=3600.0)
        try:
            for _ in range(2):
                response = _ask(service, {"op": "analyze",
                                          "program": SOURCE,
                                          "analysis": "vsfs"})
                assert response.ok, response.error
                assert response.precision_lost is True
            assert service.breakers.stats()["open"] == 1
            pinned = _ask(service, {"op": "analyze", "program": SOURCE,
                                    "analysis": "vsfs"})
            assert pinned.ok and pinned.degraded_from == "vsfs"
        finally:
            service.drain(reply_grace_s=10.0)

    def test_pinned_request_is_sound_and_marked_degraded(self):
        service = _service(breaker_threshold=1, breaker_cooldown_s=3600.0)
        try:
            clean = _ask(service, {"op": "analyze", "program": SOURCE,
                                   "analysis": "vsfs"})
            from repro.service.server import program_key

            breaker = service.breakers.breaker("default",
                                               program_key(SOURCE, "c"))
            breaker.record(False)  # trip it by hand
            pinned = _ask(service, {"op": "analyze", "program": SOURCE,
                                    "analysis": "vsfs"})
            assert pinned.ok, pinned.error
            assert pinned.precision_level == "sfs"
            assert pinned.degraded_from == "vsfs"
            assert pinned.precision_lost is True
            assert _daemon_sound("analyze", clean.result, pinned.result)
        finally:
            service.drain(reply_grace_s=10.0)


class TestDrain:
    def test_drain_is_graceful_and_idempotent(self, service):
        assert _ask(service, {"op": "analyze", "program": SOURCE}).ok
        service.drain(reply_grace_s=5.0)
        service.drain(reply_grace_s=5.0)  # second call is a no-op
        response = _ask(service, {"op": "analyze", "program": SOURCE})
        assert not response.ok
        assert response.error["type"] == "ServiceOverloaded"
        assert response.error["draining"] is True

    def test_drain_op_on_the_wire(self, service):
        response = _ask(service, {"op": "drain"})
        assert response.ok
        service._drained.wait(timeout=10.0)
        assert service.draining


class TestWarmRestart:
    def test_warm_answers_bit_identical_to_cold(self, tmp_path):
        store = str(tmp_path / "store")
        burst = [
            {"op": "analyze", "id": "q1", "program": SOURCE,
             "analysis": "sfs"},
            {"op": "nullderef", "id": "q2", "program": SOURCE,
             "analysis": "sfs"},
        ]
        cold_service = _service(store_dir=store)
        try:
            cold = [_ask(cold_service, q) for q in burst]
        finally:
            cold_service.drain(reply_grace_s=10.0)
        assert all(r.ok for r in cold)

        warm_service = _service(store_dir=store)
        try:
            warm = [_ask(warm_service, q) for q in burst]
        finally:
            warm_service.drain(reply_grace_s=10.0)
        assert warm[0].cached  # served from the result store
        for before, after in zip(cold, warm):
            assert _normalize_response(after) == _normalize_response(before)


class TestTransports:
    def test_stdio_jsonl_roundtrip(self):
        service = _service()
        lines = "\n".join([
            json.dumps({"op": "ping", "id": "p1"}),
            "",  # blank lines are skipped
            json.dumps({"op": "analyze", "id": "a1", "program": SOURCE}),
            "not json",
        ]) + "\n"
        stdout = io.StringIO()
        assert serve_stdio(service, stdin=io.StringIO(lines),
                           stdout=stdout) == 0
        replies = [json.loads(line) for line in
                   stdout.getvalue().splitlines()]
        assert [r["id"] for r in replies[:2]] == ["p1", "a1"]
        assert replies[1]["ok"] is True
        assert replies[2]["error"]["type"] == "InvalidRequest"
        assert service.draining  # EOF drained the service

    def test_http_roundtrip_and_drain_503(self):
        service = _service()
        ready = threading.Event()
        thread = threading.Thread(target=serve_http,
                                  args=(service, "127.0.0.1", 0, ready),
                                  daemon=True)
        thread.start()
        assert ready.wait(timeout=10.0)
        host, port = service.http_server.server_address
        base = f"http://{host}:{port}"

        with urllib.request.urlopen(f"{base}/health", timeout=10) as reply:
            assert reply.status == 200

        body = json.dumps({"op": "analyze", "id": "h1",
                           "program": SOURCE}).encode()
        request = urllib.request.Request(f"{base}/query", data=body,
                                         method="POST")
        with urllib.request.urlopen(request, timeout=60) as reply:
            payload = json.loads(reply.read())
        assert payload["ok"] is True and payload["id"] == "h1"

        service.drain(reply_grace_s=10.0)
        thread.join(timeout=10.0)
        assert not thread.is_alive()  # drain stopped the server


class TestServeCli:
    def test_tenant_spec_parsing(self):
        from repro.service.cli import _parse_tenants

        tenants = _parse_tenants(["team-a=4", "team-b=8:2.5"])
        assert tenants["team-a"].max_queued == 4
        assert tenants["team-b"].max_wall_s == 2.5
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            _parse_tenants(["bad spec"])

    def test_service_from_args(self, tmp_path):
        from repro.service.cli import build_serve_parser, service_from_args

        args = build_serve_parser().parse_args(
            ["--store", str(tmp_path / "s"), "--workers", "3",
             "--queue-depth", "9", "--default-deadline", "0",
             "--tenant", "t=2"])
        service = service_from_args(args)
        assert service.config.workers == 3
        assert service.config.queue_depth == 9
        assert service.config.default_deadline_s is None
        assert service.config.tenants["t"].max_queued == 2

    def test_cli_dispatches_serve(self, capsys):
        from repro.cli import main

        # --help exits 0 through the serve parser, proving the dispatch.
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "stdio" in capsys.readouterr().out


class TestWorkerCrashExitCode:
    def test_worker_crash_maps_to_exit_4(self, tmp_path, monkeypatch):
        from repro import cli as cli_module
        from repro.errors import WorkerCrash

        def _boom(*args, **kwargs):
            raise WorkerCrash("supervisor gave up", worker=1, failures=3,
                              incident="test")

        monkeypatch.setattr(cli_module, "solve_with_ladder", _boom)
        path = tmp_path / "p.c"
        path.write_text("int x; int main() { return x; }")
        assert cli_module.main(["-fspta", str(path)]) == \
            cli_module.EXIT_WORKER_CRASH == 4


class TestChaosClassificationEdges:
    """Satellite: the classifier itself must be fault-tolerant — a
    soundness check fed malformed data classifies, never crashes."""

    def _response(self, **overrides):
        base = dict(id="q", op="analyze", ok=True, precision_level="sfs",
                    degraded_from="vsfs", precision_lost=True,
                    result={"masks": ["0x3", "0x5"]})
        base.update(overrides)
        return Response(**base)

    def test_mask_length_mismatch_is_unsound_not_a_crash(self):
        assert _sound_superset([1, 2, 3], [1, 2]) is False
        base = {"result": {"masks": ["0x3", "0x5", "0x1"]}}
        assert _daemon_sound("analyze", base["result"],
                             {"masks": ["0x3"]}) is False
        klass, detail = _classify_response(base, self._response(
            result={"masks": ["0x3"]}))
        assert klass == "garbage"
        assert "unsound" in detail

    def test_superset_check_under_faulted_degrade_classifies_garbage(self):
        """A degraded run whose own superset evidence is corrupt (e.g. a
        fault hit the mask encode path) must land in 'garbage', not
        raise out of the harness."""
        base = {"result": {"masks": ["0x3", "0x5"]}}
        corrupt = self._response(result={"masks": ["0x3", "0x1"]})  # drops
        klass, _ = _classify_response(base, corrupt)
        assert klass == "garbage"
        sound = self._response(result={"masks": ["0x7", "0xf"]})  # adds
        klass, detail = _classify_response(base, sound)
        assert klass == "degraded" and detail == "to sfs"

    def test_internal_error_always_classifies_garbage(self):
        response = self._response(
            ok=False, precision_lost=False,
            error={"type": "InternalError", "exception": "KeyError"})
        klass, detail = _classify_response({}, response)
        assert klass == "garbage" and "KeyError" in detail

    def test_no_fallback_on_final_rung_is_typed_failure(self, tmp_path):
        """With fallback disabled the attempted rung IS the final rung —
        there is nowhere to fall, so the fault must surface as a typed
        failure (never an untyped traceback = garbage)."""
        from repro.chaos import ChaosRun, execute_run

        run = ChaosRun(analysis="sfs", jobs=1, seed=1,
                       point="pre_meld", trigger="no-fallback")
        execute_run(run, SOURCE, None, str(tmp_path), baseline_masks=[])
        assert run.outcome == "typed-failure"
        assert run.detail == "InjectedFault"
        assert run.fired >= 1

    def test_daemon_run_verdict_is_worst_response_class(self, tmp_path):
        """End-to-end daemon classification: a repeat worker_exec fault
        yields typed-failure (retry lane exhausted), never garbage."""
        from repro.chaos import _daemon_baseline

        store = str(tmp_path / "store")
        baseline, probes = _daemon_baseline(SOURCE, "sfs", store)
        run = DaemonRun("sfs", seed=5, point="worker_exec",
                        trigger="repeat")
        execute_daemon_run(run, SOURCE, store, baseline, probes)
        assert run.outcome == "typed-failure"
        assert "garbage" not in run.classes
        assert run.fired >= 1
