"""Integration tests: warm re-solve end to end (DESIGN.md §14).

The acceptance bar of the function-granular refactor: after an edit to
one function, a warm run recomputes only the dirty closure and is
**bit-identical** to a cold solve of the edited program — for SFS and
VSFS, in-process and through the CLI store (serial and ``--jobs 2``,
which collapses onto the serial twin), and through the service's
``update_source`` op.
"""

import json

import pytest

from repro.core.vsfs import VSFSAnalysis
from repro.incremental import build_payload, node_flow_graph, plan_warm
from repro.pipeline import AnalysisPipeline
from repro.solvers.sfs import SFSAnalysis

SOLVERS = {"sfs": SFSAnalysis, "vsfs": VSFSAnalysis}

#: Pointer-rippling edit: set() gains a conditional store of &z, so the
#: edit's effects genuinely propagate into main's load of g.
PTR_BASE = """
int *g; int x; int y; int z;
void set(int *p) { g = p; }
void other(int *q) { *q = 5; }
int f3() { int w; other(&w); return w; }
int main() { set(&x); int *a; a = g; set(&y); f3(); return 0; }
"""
PTR_EDIT = PTR_BASE.replace("void set(int *p) { g = p; }",
                            "void set(int *p) { g = p; if (z) { g = &z; } }")

#: Pure-scalar edit: f2 changes internally, no pointer behaviour moves —
#: the dirty closure must be exactly {f2}.
SCALAR_BASE = """
int *g; int x;
void set(int *p) { g = p; }
int f1() { int a; a = 1; return a; }
int f2() { int b; b = 2; return b; }
int main() { set(&x); f1(); f2(); return 0; }
"""
SCALAR_EDIT = SCALAR_BASE.replace(
    "int f2() { int b; b = 2; return b; }",
    "int f2() { int b; b = 2; b = b + 3; return b; }")


def snapshot(result):
    return {v.name: sorted(o.name for o in result.points_to(v))
            for v in result.module.variables if result.pts_mask(v)}


def solve_and_capture(src, analysis, delta=True, ptrepo=True):
    pipeline = AnalysisPipeline.from_source(src)
    svfg = pipeline.svfg()
    solver = SOLVERS[analysis](svfg.copy(), delta=delta, ptrepo=ptrepo)
    result = solver.run()
    node_in, node_out = solver.export_node_memory()
    payload = build_payload(svfg, pipeline.modref(), result, node_in,
                            node_out, node_flow_graph(solver.svfg),
                            analysis, delta, ptrepo, pipeline.andersen())
    return result, payload


def warm_vs_cold(payload, src, analysis, delta=True, ptrepo=True):
    pipeline = AnalysisPipeline.from_source(src)
    plan = plan_warm(payload, pipeline.svfg(), pipeline.modref(),
                     analysis, delta, ptrepo, pipeline.andersen())
    assert plan.usable, plan.fallback_reason
    cold = SOLVERS[analysis](pipeline.svfg().copy(), delta=delta,
                             ptrepo=ptrepo).run()
    warm_solver = SOLVERS[analysis](pipeline.svfg().copy(), delta=delta,
                                    ptrepo=ptrepo)
    warm_solver.warm_start(plan)
    warm = warm_solver.run()
    return plan, cold, warm


class TestWarmMatchesCold:
    @pytest.mark.parametrize("analysis", ["sfs", "vsfs"])
    @pytest.mark.parametrize("delta,ptrepo",
                             [(True, True), (False, False)])
    def test_pointer_edit_bit_identical(self, analysis, delta, ptrepo):
        _, payload = solve_and_capture(PTR_BASE, analysis, delta, ptrepo)
        plan, cold, warm = warm_vs_cold(payload, PTR_EDIT, analysis,
                                        delta, ptrepo)
        assert snapshot(cold) == snapshot(warm)
        assert cold.callgraph.num_edges() == warm.callgraph.num_edges()
        assert plan.stats.regions_reused > 0

    @pytest.mark.parametrize("analysis", ["sfs", "vsfs"])
    def test_scalar_edit_dirties_exactly_the_function(self, analysis):
        _, payload = solve_and_capture(SCALAR_BASE, analysis)
        plan, cold, warm = warm_vs_cold(payload, SCALAR_EDIT, analysis)
        assert snapshot(cold) == snapshot(warm)
        assert plan.dirty_functions == {"f2"}
        assert plan.stats.regions_recomputed == 1

    @pytest.mark.parametrize("analysis", ["sfs", "vsfs"])
    def test_identical_source_reuses_everything(self, analysis):
        _, payload = solve_and_capture(PTR_BASE, analysis)
        plan, cold, warm = warm_vs_cold(payload, PTR_BASE, analysis)
        assert snapshot(cold) == snapshot(warm)
        assert plan.dirty_functions == set()
        assert plan.stats.regions_reused == plan.stats.regions_total


class TestCLIWarmPath:
    @pytest.fixture
    def prog(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(SCALAR_BASE)
        return path

    def run_cli(self, argv, capsys):
        from repro.cli import main as cli_main

        assert cli_main(argv) == 0
        return capsys.readouterr()

    def pts_lines(self, out):
        return [line for line in out.splitlines() if line.startswith("pt(")]

    def test_store_edit_rerun_is_warm_and_identical(self, prog, tmp_path,
                                                    capsys):
        store = str(tmp_path / "store")
        fresh = str(tmp_path / "fresh")
        report = str(tmp_path / "warm.json")
        argv = ["-vfspta", str(prog), "--dump-pts"]
        self.run_cli(argv + ["--store", store], capsys)

        prog.write_text(SCALAR_EDIT)
        warm_out = self.run_cli(
            argv + ["--store", store, "--report-json", report], capsys)
        cold_out = self.run_cli(argv + ["--store", fresh], capsys)
        assert self.pts_lines(cold_out.out) == self.pts_lines(warm_out.out)

        with open(report) as handle:
            payload = json.load(handle)
        incr = payload["incremental"]
        assert incr["fallback_reason"] is None
        assert incr["dirty_functions"] == ["f2"]
        assert incr["regions_reused"] > 0
        assert payload["report"]["incremental"] == incr
        assert not payload["store_hit"]

    def test_jobs_2_collapses_to_serial_warm(self, prog, tmp_path, capsys):
        store = str(tmp_path / "store")
        report = str(tmp_path / "warm-par.json")
        argv = ["-vfspta", str(prog), "--dump-pts", "--store", store]
        self.run_cli(argv, capsys)

        prog.write_text(SCALAR_EDIT)
        warm_out = self.run_cli(
            argv + ["--jobs", "2", "--report-json", report], capsys)

        fresh = str(tmp_path / "fresh")
        cold_out = self.run_cli(
            ["-vfspta", str(prog), "--dump-pts", "--store", fresh], capsys)
        assert self.pts_lines(cold_out.out) == self.pts_lines(warm_out.out)

        with open(report) as handle:
            payload = json.load(handle)
        incr = payload["incremental"]
        assert incr["fallback_reason"] is None
        assert incr["dirty_functions"] == ["f2"]
        # The parallel stage collapsed onto its serial twin: degradation
        # without precision loss, audited on the heal trail.
        assert not payload["report"]["precision_lost"]
        assert any(heal.get("reason") == "warm-start"
                   for heal in payload["self_heal"])


class TestServiceUpdateSource:
    def test_update_source_answers_warm_and_identical(self):
        from repro.service.server import AnalysisService, ServiceConfig

        service = AnalysisService(ServiceConfig(workers=1)).start()
        try:
            first = service.handle_line(
                {"op": "analyze", "id": "1", "analysis": "vsfs",
                 "program": PTR_BASE}).to_dict()
            assert first["ok"], first
            warm = service.handle_line(
                {"op": "update_source", "id": "2", "analysis": "vsfs",
                 "program": PTR_EDIT}).to_dict()
            assert warm["ok"], warm
            incr = warm["result"]["incremental"]
            assert incr["fallback_reason"] is None
            assert incr["regions_reused"] > 0
        finally:
            service.drain(reply_grace_s=2)

        cold_service = AnalysisService(ServiceConfig(workers=1)).start()
        try:
            cold = cold_service.handle_line(
                {"op": "analyze", "id": "3", "analysis": "vsfs",
                 "program": PTR_EDIT}).to_dict()
        finally:
            cold_service.drain(reply_grace_s=2)
        assert cold["result"]["masks"] == warm["result"]["masks"]

    def test_update_source_rejects_andersen(self):
        from repro.service.server import AnalysisService, ServiceConfig

        service = AnalysisService(ServiceConfig(workers=1)).start()
        try:
            bad = service.handle_line(
                {"op": "update_source", "id": "4", "analysis": "ander",
                 "program": PTR_BASE}).to_dict()
        finally:
            service.drain(reply_grace_s=2)
        assert not bad["ok"]
        assert bad["error"]["type"] == "InvalidRequest"
