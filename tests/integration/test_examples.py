"""Smoke tests: every example script runs and prints what it promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "flow-sensitivity in action" in out
        assert "['x', 'y']" in out

    def test_motivating_example(self):
        out = run_example("motivating_example.py")
        assert "VSFS: 3 points-to sets, 2 propagation constraints" in out

    def test_callback_registry(self):
        out = run_example("callback_registry.py")
        assert "indirect calls resolved   : 2" in out
        assert "delta nodes" in out

    def test_ir_walkthrough(self):
        out = run_example("ir_walkthrough.py")
        assert "memory SSA annotations" in out
        assert "chi(" in out and "mu(" in out

    def test_null_deref_scan(self):
        out = run_example("null_deref_scan.py")
        assert "warnings: 1" in out
        assert "invisible to the flow-insensitive" in out

    def test_program_slicing(self):
        out = run_example("program_slicing.py")
        assert "backward slice" in out
        assert "dead stores: 1" in out

    def test_suite_report_subset(self):
        out = run_example("suite_report.py", "du", timeout=600)
        assert "Table II" in out and "Table III" in out
        assert "precision check: VSFS identical to SFS" in out

    def test_suite_report_rejects_unknown(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "suite_report.py"), "nonesuch"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 1
