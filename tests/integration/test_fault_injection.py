"""Fault injection and graceful degradation, end to end.

Proves the robustness contract of repro.runtime over the full matrix of
trigger point × solver × optimisation ablation:

- with ``fallback=False`` every injected **solver-domain** fault surfaces
  as a typed :class:`~repro.errors.InjectedFault` carrying stage context
  (never an untyped exception, never a wrong answer) — the io/parallel
  domains added by the resilience layer are *absorbed* instead of
  surfaced, and are covered by the self-heal and chaos tests;
- with the degradation ladder the same fault costs precision, not the
  answer: the result is a *superset* of the precise points-to sets
  (sound may-analysis), tagged with ``precision_level``/``degraded_from``;
- a zero budget still produces an Andersen-backed answer;
- unbudgeted, fault-free governed runs are bit-identical to the
  ungoverned solvers.
"""

import pytest

from repro.errors import BudgetExceeded, InjectedFault
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline, analyze
from repro.runtime import Budget, FaultPlan
from repro.runtime.faults import FAULT_DOMAINS

# Indirect calls (OTF edges), loads/stores through globals, and heap
# allocation: every trigger point is reachable on this program.
PROGRAM = """
    struct node { int v; struct node *f0; };
    struct node *g;
    struct node *cb1(struct node *a, struct node *b) { g = a; return b; }
    struct node *cb2(struct node *a, struct node *b) { g = b; return a; }
    fnptr h;
    int main(int c) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        if (c) { h = cb1; } else { h = cb2; }
        struct node *r = h(n, g);
        return 0;
    }
"""

SOLVERS = ("sfs", "vsfs")

#: (delta, ptrepo) — default plus the two CI ablations.
ABLATIONS = {
    "default": (True, True),
    "no-delta": (False, True),
    "no-ptrepo": (True, False),
}

MATRIX = [
    (point, solver, ablation)
    for point in FAULT_DOMAINS["solver"]
    for solver in SOLVERS
    for ablation in ABLATIONS
]


def _matrix_id(param):
    return str(param)


def _precise_masks(solver):
    result = analyze(compile_c(PROGRAM), analysis=solver)
    assert result.precision_level == solver
    return list(result._pt)


@pytest.mark.parametrize("point,solver,ablation", MATRIX, ids=_matrix_id)
class TestFaultMatrix:
    def test_fault_surfaces_typed_without_fallback(self, point, solver, ablation):
        delta, ptrepo = ABLATIONS[ablation]
        plan = FaultPlan(point=point)
        if point == "ptrepo_union" and not ptrepo:
            # The point is unreachable with the repository disabled: the
            # run must complete precisely and the plan must not fire.
            result = analyze(compile_c(PROGRAM), analysis=solver,
                             fallback=False, faults=plan,
                             delta=delta, ptrepo=ptrepo)
            assert result.precision_level == solver
            assert plan.fired == []
            return
        with pytest.raises(InjectedFault) as info:
            analyze(compile_c(PROGRAM), analysis=solver, fallback=False,
                    faults=plan, delta=delta, ptrepo=ptrepo)
        err = info.value
        assert err.point == point
        assert err.stage == solver  # stage context names the solver it hit
        assert err.hit >= 1
        assert err.run_report is not None
        assert err.run_report.attempts[0].outcome == "fault-injected"
        assert plan.fired and plan.fired[0][0] == point

    def test_fault_degrades_to_sound_superset(self, point, solver, ablation):
        delta, ptrepo = ABLATIONS[ablation]
        plan = FaultPlan(point=point)  # once=True: the retry completes
        result = analyze(compile_c(PROGRAM), analysis=solver, faults=plan,
                         delta=delta, ptrepo=ptrepo)
        precise = _precise_masks(solver)
        if point == "ptrepo_union" and not ptrepo:
            assert result.precision_level == solver
            assert not result.report.degraded
        else:
            assert result.degraded_from == solver
            assert result.report.degraded
            ladder_rest = {"vsfs": ("sfs", "andersen"), "sfs": ("andersen",)}
            assert result.precision_level in ladder_rest[solver]
            assert "fault-injected" in [
                a.outcome for a in result.report.attempts]
        # Soundness: degrading may only ADD may-point-to facts.
        degraded = list(result._pt)
        assert len(degraded) == len(precise)
        for precise_mask, degraded_mask in zip(precise, degraded):
            assert precise_mask & ~degraded_mask == 0


class TestDegradationLadder:
    @pytest.mark.parametrize("budget", [
        Budget(wall_seconds=0), Budget(max_steps=0), Budget(max_memory_bytes=0),
    ], ids=["wall", "steps", "memory"])
    def test_zero_budget_still_answers(self, budget):
        result = analyze(compile_c(PROGRAM), budget=budget)
        assert result.precision_level == "andersen"
        assert result.degraded_from == "vsfs"
        report = result.report
        assert report.degraded and report.stage_reached == "andersen"
        assert report.attempts[-1].outcome == "completed"
        # The fallback result still answers the query API soundly.
        precise = _precise_masks("vsfs")
        for precise_mask, fallback_mask in zip(precise, result._pt):
            assert precise_mask & ~fallback_mask == 0

    def test_zero_budget_without_fallback_raises(self):
        with pytest.raises(BudgetExceeded) as info:
            analyze(compile_c(PROGRAM), budget=Budget(wall_seconds=0),
                    fallback=False)
        assert info.value.resource == "wall"
        assert info.value.run_report is not None

    def test_step_budget_interrupt_attaches_partial_state(self):
        with pytest.raises(BudgetExceeded) as info:
            analyze(compile_c(PROGRAM), budget=Budget(max_steps=3),
                    fallback=False)
        err = info.value
        assert err.resource == "steps"
        assert err.stage == "vsfs"
        assert err.stats is not None
        partial = err.partial_result
        assert partial is not None and partial.complete is False

    def test_vsfs_fault_falls_to_sfs_not_straight_to_floor(self):
        plan = FaultPlan(point="pre_meld")
        result = analyze(compile_c(PROGRAM), analysis="vsfs", faults=plan)
        # once=True disarms after the vsfs firing, so the sfs rung — which
        # computes the *identical* points-to sets — completes.
        assert result.precision_level == "sfs"
        assert result._pt == _precise_masks("vsfs")

    def test_repeating_fault_falls_to_andersen_floor(self):
        plan = FaultPlan(point="pre_meld", probability=1.0, once=False)
        result = analyze(compile_c(PROGRAM), analysis="vsfs", faults=plan)
        # The fault fires on every rung it instruments; only the fault-free
        # Andersen floor can answer.
        assert result.precision_level == "andersen"
        assert [a.outcome for a in result.report.attempts] == [
            "fault-injected", "fault-injected", "completed"]


class TestGovernedRunsAreBitIdentical:
    @pytest.mark.parametrize("solver", SOLVERS)
    @pytest.mark.parametrize("ablation", list(ABLATIONS), ids=_matrix_id)
    def test_unbudgeted_faultfree_matches_ungoverned(self, solver, ablation):
        delta, ptrepo = ABLATIONS[ablation]
        governed = analyze(compile_c(PROGRAM), analysis=solver,
                           delta=delta, ptrepo=ptrepo)
        pipeline = AnalysisPipeline(compile_c(PROGRAM))
        direct = (pipeline.sfs if solver == "sfs" else pipeline.vsfs)(
            delta=delta, ptrepo=ptrepo)
        assert governed._pt == direct._pt
        for counter in ("propagations", "unions", "strong_updates",
                        "weak_updates", "nodes_processed", "stored_ptsets",
                        "top_level_bits", "callgraph_edges"):
            assert getattr(governed.stats, counter) == \
                getattr(direct.stats, counter), counter
        assert governed.precision_level == solver
        assert governed.report is not None and not governed.report.degraded
