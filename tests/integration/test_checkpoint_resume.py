"""Kill-at-step-N × resume: resumed runs must be bit-identical.

The solvers are monotone fixpoint computations, so a checkpoint taken at
any intermediate step captures a valid lattice point; continuing from it
in a *fresh* process (modelled here by a fresh compile of the same
source) must converge to exactly the same points-to solution as the
uninterrupted run — not merely an equivalent one.
"""

import os

import pytest

from repro.errors import BudgetExceeded, CheckpointError
from repro.frontend import compile_c
from repro.pipeline import analyze
from repro.runtime import Budget, CheckpointConfig, load_checkpoint

# Indirect calls (OTF edges), loads/stores through globals, and heap
# allocation keep every solver feature on the resume path.
PROGRAM = """
    struct node { int v; struct node *f0; };
    struct node *g;
    struct node *cb1(struct node *a, struct node *b) { g = a; return b; }
    struct node *cb2(struct node *a, struct node *b) { g = b; return a; }
    fnptr h;
    int main(int c) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        if (c) { h = cb1; } else { h = cb2; }
        struct node *r = h(n, g);
        return 0;
    }
"""

ABLATIONS = {
    "default": (True, True),
    "no-delta": (False, True),
    "no-ptrepo": (True, False),
    "neither": (False, False),
}

MATRIX = [
    (analysis, ablation, kill_at)
    for analysis in ("sfs", "vsfs")
    for ablation in ABLATIONS
    for kill_at in (3, 11)
] + [
    ("ander", "default", 3),
    ("ander", "default", 11),
    ("icfg-fs", "default", 3),
    ("icfg-fs", "default", 11),
]


def _interrupt(tmp_path, analysis, delta, ptrepo, kill_at):
    """Budget-kill a run at *kill_at* steps; returns the checkpoint path."""
    config = CheckpointConfig(str(tmp_path), every_steps=2)
    with pytest.raises(BudgetExceeded) as exc:
        analyze(compile_c(PROGRAM), analysis=analysis,
                budget=Budget(max_steps=kill_at), fallback=False,
                checkpoint=config, delta=delta, ptrepo=ptrepo)
    path = exc.value.checkpoint_path
    assert path is not None and os.path.exists(path)
    report = exc.value.run_report
    assert report.checkpoint_saves >= 1
    assert report.checkpoint_path == path
    return config, path


class TestKillResumeMatrix:
    @pytest.mark.parametrize("analysis,ablation,kill_at", MATRIX,
                             ids=lambda p: str(p))
    def test_resume_is_bit_identical(self, tmp_path, analysis, ablation,
                                     kill_at):
        delta, ptrepo = ABLATIONS[ablation]
        clean = analyze(compile_c(PROGRAM), analysis=analysis,
                        delta=delta, ptrepo=ptrepo)
        config, __ = _interrupt(tmp_path, analysis, delta, ptrepo, kill_at)
        resumed = analyze(compile_c(PROGRAM), analysis=analysis,
                          checkpoint=config, resume_from=True,
                          delta=delta, ptrepo=ptrepo)
        assert resumed.report.resumed
        assert resumed.report.resumed_from_step is not None
        assert resumed.snapshot() == clean.snapshot()
        # The completed run discarded its own checkpoint.
        assert not any(name.startswith("ckpt-")
                       for name in os.listdir(tmp_path))

    def test_resume_via_explicit_path(self, tmp_path):
        clean = analyze(compile_c(PROGRAM), analysis="vsfs")
        __, path = _interrupt(tmp_path, "vsfs", True, True, 5)
        resumed = analyze(compile_c(PROGRAM), analysis="vsfs",
                          resume_from=path)
        assert resumed.report.resumed
        assert resumed.snapshot() == clean.snapshot()

    def test_resume_from_empty_directory_starts_fresh(self, tmp_path):
        config = CheckpointConfig(str(tmp_path))
        result = analyze(compile_c(PROGRAM), analysis="vsfs",
                         checkpoint=config, resume_from=True)
        assert not result.report.resumed
        clean = analyze(compile_c(PROGRAM), analysis="vsfs")
        assert result.snapshot() == clean.snapshot()

    def test_repeated_interrupts_chain(self, tmp_path):
        """Kill, resume-and-kill again, then finish: still bit-identical."""
        clean = analyze(compile_c(PROGRAM), analysis="vsfs")
        config, __ = _interrupt(tmp_path, "vsfs", True, True, 3)
        with pytest.raises(BudgetExceeded):
            analyze(compile_c(PROGRAM), analysis="vsfs", checkpoint=config,
                    resume_from=True, budget=Budget(max_steps=4),
                    fallback=False)
        resumed = analyze(compile_c(PROGRAM), analysis="vsfs",
                          checkpoint=config, resume_from=True)
        assert resumed.report.resumed
        assert resumed.snapshot() == clean.snapshot()


class TestRejection:
    def test_explicit_missing_path_raises(self):
        with pytest.raises(CheckpointError) as exc:
            analyze(compile_c(PROGRAM), analysis="vsfs",
                    resume_from="/nonexistent/ckpt.json")
        assert exc.value.reason == "missing"

    def test_edited_program_rejected(self, tmp_path):
        __, path = _interrupt(tmp_path, "vsfs", True, True, 5)
        edited = PROGRAM.replace("g = a", "g = b")
        with pytest.raises(CheckpointError) as exc:
            analyze(compile_c(edited), analysis="vsfs", resume_from=path)
        assert exc.value.reason == "ir-mismatch"

    def test_wrong_ablation_rejected(self, tmp_path):
        __, path = _interrupt(tmp_path, "vsfs", True, True, 5)
        with pytest.raises(CheckpointError) as exc:
            analyze(compile_c(PROGRAM), analysis="vsfs", resume_from=path,
                    delta=False)
        assert exc.value.reason == "config-mismatch"

    def test_wrong_ladder_rejected(self, tmp_path):
        __, path = _interrupt(tmp_path, "icfg-fs", True, True, 5)
        with pytest.raises(CheckpointError) as exc:
            analyze(compile_c(PROGRAM), analysis="sfs", resume_from=path)
        assert exc.value.reason == "config-mismatch"

    def test_corrupt_checkpoint_raises_typed_error(self, tmp_path):
        __, path = _interrupt(tmp_path, "vsfs", True, True, 5)
        with open(path, "r+b") as handle:
            handle.seek(200)
            handle.write(b"\x00\x00\x00")
        with pytest.raises(CheckpointError) as exc:
            analyze(compile_c(PROGRAM), analysis="vsfs", resume_from=path)
        assert exc.value.reason == "corrupt"
        # Quarantined: a directory-mode retry now starts fresh.
        assert not os.path.exists(path)

    def test_truncated_checkpoint_raises_typed_error(self, tmp_path):
        config, path = _interrupt(tmp_path, "vsfs", True, True, 5)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(CheckpointError) as exc:
            analyze(compile_c(PROGRAM), analysis="vsfs",
                    checkpoint=config, resume_from=True)
        assert exc.value.reason == "corrupt"

    def test_corruption_never_degrades(self, tmp_path):
        """A bad checkpoint must surface even with fallback enabled."""
        __, path = _interrupt(tmp_path, "vsfs", True, True, 5)
        with open(path, "w") as handle:
            handle.write("garbage")
        with pytest.raises(CheckpointError):
            analyze(compile_c(PROGRAM), analysis="vsfs", resume_from=path,
                    fallback=True)


class TestCheckpointManifest:
    def test_manifest_records_run_identity(self, tmp_path):
        __, path = _interrupt(tmp_path, "vsfs", True, True, 5)
        meta, payload = load_checkpoint(path)
        assert meta["analysis"] == "vsfs"
        assert meta["delta"] is True and meta["ptrepo"] is True
        assert meta["reason"] == "budget"
        assert isinstance(meta["step"], int) and meta["step"] >= 0
        assert isinstance(payload, dict) and "worklist" in payload

    def test_budget_save_beats_cadence(self, tmp_path):
        """Even with a huge cadence, the budget trip itself checkpoints."""
        config = CheckpointConfig(str(tmp_path), every_steps=10 ** 9)
        with pytest.raises(BudgetExceeded) as exc:
            analyze(compile_c(PROGRAM), analysis="vsfs",
                    budget=Budget(max_steps=5), fallback=False,
                    checkpoint=config)
        assert exc.value.checkpoint_path is not None
        meta, __ = load_checkpoint(exc.value.checkpoint_path)
        assert meta["reason"] == "budget"
