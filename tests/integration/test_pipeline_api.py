"""Integration tests for the top-level public API (repro.pipeline)."""

import pytest

from repro import AnalysisPipeline, analyze, compile_c, module_from
from repro.analysis.andersen import AndersenResult
from repro.errors import AnalysisError
from repro.solvers.base import FlowSensitiveResult

SRC = "int *g; int x; int main() { g = &x; return 0; }"

IR_SRC = """
func @main() {
entry:
  %p = alloca x
  %q = load %p
  ret
}
"""


class TestAnalyzeEntryPoint:
    def test_vsfs_default(self):
        result = analyze(SRC)
        assert isinstance(result, FlowSensitiveResult)
        assert result.stats.analysis == "vsfs"

    @pytest.mark.parametrize("name,cls", [
        ("ander", AndersenResult),
        ("sfs", FlowSensitiveResult),
        ("vsfs", FlowSensitiveResult),
        ("icfg-fs", FlowSensitiveResult),
    ])
    def test_all_analyses(self, name, cls):
        assert isinstance(analyze(SRC, analysis=name), cls)

    def test_ir_language(self):
        result = analyze(IR_SRC, analysis="vsfs", language="ir")
        module = result.module
        p = next(v for v in module.variables if v.name == "p")
        assert {o.name for o in result.points_to(p)} == {"x"}

    def test_prepared_module_accepted(self):
        module = compile_c(SRC)
        result = analyze(module, analysis="sfs")
        assert result.module is module

    def test_unknown_analysis_rejected(self):
        with pytest.raises(AnalysisError, match="unknown analysis"):
            analyze(SRC, analysis="magic")

    def test_unknown_language_rejected(self):
        with pytest.raises(AnalysisError, match="unknown language"):
            module_from(SRC, language="fortran")


class TestPipelineCaching:
    def test_stages_cached(self):
        pipeline = AnalysisPipeline(compile_c(SRC))
        assert pipeline.andersen() is pipeline.andersen()
        assert pipeline.memssa() is pipeline.memssa()
        assert pipeline.svfg() is pipeline.svfg()
        assert pipeline.versioning() is pipeline.versioning()

    def test_fresh_svfg_not_cached(self):
        pipeline = AnalysisPipeline(compile_c(SRC))
        assert pipeline.fresh_svfg() is not pipeline.fresh_svfg()

    def test_solvers_do_not_mutate_shared_svfg(self):
        pipeline = AnalysisPipeline(compile_c("""
            struct node { int v; };
            struct node *cb(struct node *a, struct node *b) { return a; }
            fnptr h;
            int main() { h = cb; struct node *r = h(null, null); return 0; }
        """))
        shared = pipeline.svfg()
        edges_before = shared.num_indirect_edges()
        pipeline.sfs()  # runs on a fresh copy
        assert shared.num_indirect_edges() == edges_before

    def test_repeated_solves_agree(self):
        pipeline = AnalysisPipeline(compile_c(SRC))
        assert pipeline.vsfs().snapshot() == pipeline.vsfs().snapshot()
