"""Parallel sharded solving must be result-invisible (DESIGN.md §10).

The sharded drivers partition the SVFG across workers and exchange only
frontier deltas, but the solvers are confluent: any fair schedule reaches
the identical least fixpoint.  These tests pin that down bit-for-bit —
parallel SFS/VSFS against their serial twins across worker counts,
transports and ablations, including a worker that is hard-killed
mid-solve and revived from its last seal.
"""

import pytest

from repro.bench.workloads import suite_program
from repro.parallel.driver import solve_parallel
from repro.pipeline import AnalysisPipeline

SOURCE_NAME = "du"  # smallest suite benchmark: real call/heap structure


@pytest.fixture(scope="module")
def pipeline():
    return AnalysisPipeline(module=suite_program(SOURCE_NAME))


@pytest.fixture(scope="module")
def serial_sfs(pipeline):
    return pipeline.sfs()


@pytest.fixture(scope="module")
def serial_vsfs(pipeline):
    return pipeline.vsfs()


def assert_identical(parallel, serial):
    """Bit-identical points-to results and call graphs."""
    assert parallel._pt == serial._pt
    assert ({(call.id, callee.name)
             for call, callee in parallel.callgraph.call_edges()}
            == {(call.id, callee.name)
                for call, callee in serial.callgraph.call_edges()})


class TestParallelEquivalence:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_sfs_matches_serial(self, pipeline, serial_sfs, jobs):
        result = pipeline.sfs_par(jobs=jobs)
        assert_identical(result, serial_sfs)
        assert result.parallel.jobs == jobs
        assert result.parallel.rounds >= jobs  # topological stagger

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_vsfs_matches_serial(self, pipeline, serial_vsfs, jobs):
        result = pipeline.vsfs_par(jobs=jobs)
        assert_identical(result, serial_vsfs)
        assert result.parallel.jobs == jobs

    def test_eager_kernel_matches_serial(self, pipeline):
        serial = pipeline.sfs(delta=False)
        result = pipeline.sfs_par(jobs=2, delta=False)
        assert_identical(result, serial)

    def test_no_ptrepo_matches_serial(self, pipeline, serial_sfs):
        # The frontier codec never ships raw sets even when deduplicated
        # storage is ablated away inside the solver.
        result = pipeline.sfs_par(jobs=2, ptrepo=False)
        assert result._pt == serial_sfs._pt

    def test_fork_transport_matches_inline(self, pipeline, serial_sfs):
        from repro.parallel.driver import fork_available

        if not fork_available():
            pytest.skip("no fork start method on this platform")
        result = pipeline.sfs_par(jobs=2, mode="fork")
        assert_identical(result, serial_sfs)
        assert result.parallel.mode == "fork"

    def test_merged_stats_account_all_workers(self, pipeline, serial_sfs):
        result = pipeline.sfs_par(jobs=2)
        workers = result.parallel.workers
        assert len(workers) == 2
        assert sum(w["pops"] for w in workers) == result.stats.nodes_processed
        assert sum(w["nodes"] for w in workers) == len(
            pipeline.svfg().nodes)
        # Gauges are recomputed globally, identical to serial.
        assert result.stats.top_level_bits == serial_sfs.stats.top_level_bits
        assert result.stats.callgraph_edges == serial_sfs.stats.callgraph_edges


class TestKillAndResume:
    @pytest.mark.parametrize("level,kill_worker", [("sfs", 0), ("vsfs", 1)])
    def test_killed_worker_revives_from_seal(self, pipeline, serial_sfs,
                                             serial_vsfs, level, kill_worker):
        serial = serial_sfs if level == "sfs" else serial_vsfs
        versioning = pipeline.versioning() if level == "vsfs" else None
        result = solve_parallel(
            pipeline.fresh_svfg(), level, jobs=2, versioning=versioning,
            seal_every=1, kill_after_round=1, kill_worker=kill_worker)
        assert_identical(result, serial)
        assert result.parallel.revivals >= 1
        assert result.parallel.workers[kill_worker]["incarnation"] >= 1

    def test_kill_without_seal_replays_from_scratch(self, pipeline,
                                                    serial_sfs):
        result = solve_parallel(
            pipeline.fresh_svfg(), "sfs", jobs=2,
            seal_every=0, kill_after_round=1, kill_worker=0)
        assert_identical(result, serial_sfs)
        assert result.parallel.revivals >= 1


class TestWatchdog:
    """Driver-side worker supervision (DESIGN.md §12): hung and lost
    workers are killed and revived from their last seal; a slot that
    spends its failure budget raises a typed WorkerCrash the ladder
    collapses onto the bit-identical serial rung."""

    def test_hung_worker_times_out_and_revives(self, pipeline, serial_sfs):
        from repro.parallel.driver import fork_available

        if not fork_available():
            pytest.skip("no fork start method on this platform")
        result = solve_parallel(
            pipeline.fresh_svfg(), "sfs", jobs=2, mode="fork",
            seal_every=1, hang_after_round=1, hang_worker=1,
            heartbeat_seconds=0.5)
        assert_identical(result, serial_sfs)
        assert result.parallel.heartbeat_timeouts >= 1
        assert result.parallel.revivals >= 1
        assert result.parallel.workers[1]["incarnation"] >= 1

    def test_injected_heartbeat_fault_revives(self, pipeline, serial_sfs):
        from repro.runtime.faults import FaultPlan

        plan = FaultPlan(point="worker_heartbeat")  # once=True
        result = solve_parallel(pipeline.fresh_svfg(), "sfs", jobs=2,
                                mode="inline", seal_every=1, faults=plan)
        assert_identical(result, serial_sfs)
        assert result.parallel.heartbeat_timeouts >= 1
        assert plan.fired

    def test_spawn_fault_respawns_within_budget(self, pipeline, serial_sfs):
        from repro.runtime.faults import FaultPlan

        plan = FaultPlan(point="worker_spawn")
        result = solve_parallel(pipeline.fresh_svfg(), "sfs", jobs=2,
                                mode="inline", faults=plan)
        assert_identical(result, serial_sfs)
        assert result.parallel.worker_failures >= 1

    def test_budget_exhaustion_is_typed_worker_crash(self, pipeline):
        from repro.errors import SolverError, WorkerCrash
        from repro.runtime.faults import FaultPlan

        plan = FaultPlan(point="frontier_send", probability=1.0, once=False)
        with pytest.raises(WorkerCrash) as info:
            solve_parallel(pipeline.fresh_svfg(), "sfs", jobs=2,
                           mode="inline", faults=plan)
        err = info.value
        assert isinstance(err, SolverError)  # ladder-catchable by type
        assert err.incident == "frontier-send"
        assert err.failures >= 1
