"""Unit tests for the IR: builder, module registries, printer round-trips."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BranchInst,
    Function,
    IRBuilder,
    Module,
    ObjectKind,
    RetInst,
    Variable,
    parse_module,
    print_module,
    verify_module,
)
from repro.ir.values import FunctionObject


def small_module():
    module = Module("t")
    b = IRBuilder(module)
    b.function("main")
    b.block("entry")
    p = b.alloca("x")
    q = b.malloc("h")
    b.store(p, q)
    r = b.load(p)
    b.ret()
    module.renumber()
    return module, b, p, q, r


class TestBuilder:
    def test_alloc_kinds(self):
        module, b, *_ = small_module()
        kinds = [obj.kind for obj in module.objects]
        assert ObjectKind.STACK in kinds and ObjectKind.HEAP in kinds

    def test_ids_assigned(self):
        module, *_ = small_module()
        ids = [inst.id for inst in module.instructions()]
        assert ids == sorted(ids) and ids[0] == 0

    def test_variables_registered(self):
        module, b, p, q, r = small_module()
        assert p.id >= 0 and q.id >= 0 and r.id >= 0

    def test_funentry_is_first_instruction(self):
        module, *_ = small_module()
        main = module.get_function("main")
        assert main.entry_block.instructions[0] is main.entry_inst

    def test_duplicate_function_rejected(self):
        module = Module("t")
        module.add_function(Function("f"))
        with pytest.raises(IRError):
            module.add_function(Function("f"))

    def test_duplicate_block_rejected(self):
        module = Module("t")
        b = IRBuilder(module)
        b.function("f")
        b.block("entry")
        with pytest.raises(ValueError):
            b.block("entry")

    def test_append_to_terminated_block_rejected(self):
        module = Module("t")
        b = IRBuilder(module)
        b.function("f")
        b.block("entry")
        b.ret()
        with pytest.raises(ValueError):
            b.ret()

    def test_addr_of_function(self):
        module = Module("t")
        b = IRBuilder(module)
        callee = b.function("callee")
        b.function("main")
        b.block("entry")
        fp = b.addr_of_function(callee)
        b.ret()
        module.renumber()
        assert isinstance(callee.obj, FunctionObject)
        assert callee.obj.function is callee

    def test_cond_br_structure(self):
        module = Module("t")
        b = IRBuilder(module)
        b.function("f")
        entry = b.block("entry")
        then_b = b.block("then")
        b.ret()
        else_b = b.block("els")
        b.ret()
        b.switch_to(entry)
        cond = b.cmp("lt", b.const(1), b.const(2))
        b.cond_br(cond, then_b, else_b)
        assert entry.successors() == [then_b, else_b]

    def test_branch_arity_checked(self):
        module = Module("t")
        b = IRBuilder(module)
        b.function("f")
        blk = b.block("entry")
        with pytest.raises(ValueError):
            BranchInst([blk, blk])  # two targets need a condition


class TestFieldObjects:
    def test_offset_zero_is_base(self):
        module = Module("t")
        obj = module.new_object("s", ObjectKind.STACK, num_fields=3)
        assert module.field_object(obj, 0) is obj

    def test_field_objects_cached(self):
        module = Module("t")
        obj = module.new_object("s", ObjectKind.STACK, num_fields=3)
        f1 = module.field_object(obj, 1)
        assert module.field_object(obj, 1) is f1

    def test_field_of_field_flattens(self):
        module = Module("t")
        obj = module.new_object("s", ObjectKind.STACK, num_fields=10)
        inner = module.field_object(obj, 2)
        nested = module.field_object(inner, 3)
        assert nested.base is obj
        assert nested.offset == 5

    def test_out_of_bounds_collapses_to_base(self):
        module = Module("t")
        obj = module.new_object("s", ObjectKind.STACK, num_fields=2)
        assert module.field_object(obj, 7) is obj

    def test_unknown_layout_creates_fields(self):
        module = Module("t")
        obj = module.new_object("h", ObjectKind.HEAP)  # num_fields unknown
        field = module.field_object(obj, 4)
        assert field.is_field() and field.base is obj


class TestModule:
    def test_entry_function_prefers_init(self):
        module = Module("t")
        b = IRBuilder(module)
        b.function("main")
        b.block("entry")
        b.ret()
        assert module.entry_function().name == "main"
        init = b.ensure_init_function()
        assert module.entry_function() is init

    def test_entry_function_missing_raises(self):
        with pytest.raises(IRError):
            Module("t").entry_function()

    def test_renumber_idempotent(self):
        module, *_ = small_module()
        first = [inst.id for inst in module.instructions()]
        module.renumber()
        assert [inst.id for inst in module.instructions()] == first


class TestVerifier:
    def test_good_module_verifies(self):
        module, *_ = small_module()
        verify_module(module, ssa=True)

    def test_unterminated_block_caught(self):
        module = Module("t")
        b = IRBuilder(module)
        b.function("f")
        b.block("entry")
        b.alloca("x")
        with pytest.raises(IRError, match="not terminated"):
            verify_module(module)

    def test_double_definition_caught_in_ssa_mode(self):
        module = Module("t")
        b = IRBuilder(module)
        b.function("f")
        b.block("entry")
        v = Variable("v")
        b.copy(b.const(0), dst=v)
        b.copy(b.const(1), dst=v)
        b.ret()
        module.renumber()
        with pytest.raises(IRError, match="definitions"):
            verify_module(module, ssa=True)
        verify_module(module, ssa=False)  # fine outside SSA mode

    def test_call_arity_checked(self):
        src = """
        func @callee(%a, %b) {
        entry:
          ret
        }
        func @main() {
        entry:
          call @callee(%x)
          ret
        }
        """
        module = parse_module(src)
        with pytest.raises(IRError, match="args"):
            verify_module(module)


class TestPrinterParserRoundTrip:
    def test_round_trip_preserves_semantics(self):
        src = """
        func @main() {
        entry:
          %p = alloca x
          %h = malloc heap, fields 2
          store %p, %h
          %r = load %p
          %f = field %r, 1
          %c = cmp lt 1, 2
          br %c, a, b
        a:
          %y = copy %r
          br c
        b:
          br c
        c:
          %m = phi [a: %y], [b: %r]
          ret %m
        }
        """
        module = parse_module(src)
        text = print_module(module)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text

    def test_parse_calls_and_funaddr(self):
        src = """
        func @f(%a) {
        entry:
          ret %a
        }
        func @main() {
        entry:
          %fp = funaddr @f
          %r1 = call @f(%fp)
          %r2 = call %fp(%r1)
          ret
        }
        """
        module = parse_module(src)
        text = print_module(module)
        assert "funaddr @f" in text
        assert "call @f" in text
        assert "call %fp" in text

    def test_parse_error_reports_position(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_module("func @f( { }")
