"""Unit tests for CFG analyses and transformation passes."""

import pytest

from repro.frontend import compile_c
from repro.ir import AllocInst, LoadInst, Module, PhiInst, RetInst, StoreInst, parse_module
from repro.passes.cfg import CFGInfo, reverse_postorder
from repro.passes.dominators import (
    DominatorTree,
    dominance_frontiers,
    iterated_dominance_frontier,
)
from repro.passes.loops import blocks_in_loops, find_back_edges
from repro.passes.mem2reg import promote_allocas_function
from repro.passes.singletons import mark_singletons
from repro.passes.unify_returns import unify_returns


DIAMOND = """
func @f(%c) {
entry:
  br %c, left, right
left:
  br join
right:
  br join
join:
  ret
}
"""

LOOP = """
func @f(%c) {
entry:
  br header
header:
  br %c, body, exit
body:
  br header
exit:
  ret
}
"""


def blocks_of(src, name="f"):
    module = parse_module(src)
    func = module.get_function(name)
    return func, {block.name: block for block in func.blocks}


class TestCFG:
    def test_rpo_starts_at_entry(self):
        func, blocks = blocks_of(DIAMOND)
        rpo = reverse_postorder(func)
        assert rpo[0] is blocks["entry"]
        assert rpo[-1] is blocks["join"]

    def test_rpo_skips_unreachable(self):
        func, blocks = blocks_of("""
        func @f() {
        entry:
          ret
        dead:
          ret
        }
        """)
        assert blocks["dead"] not in reverse_postorder(func)

    def test_preds_computed(self):
        func, blocks = blocks_of(DIAMOND)
        cfg = CFGInfo(func)
        assert set(cfg.preds[blocks["join"]]) == {blocks["left"], blocks["right"]}


class TestDominators:
    def test_diamond_idoms(self):
        func, blocks = blocks_of(DIAMOND)
        domtree = DominatorTree(func)
        assert domtree.idom[blocks["left"]] is blocks["entry"]
        assert domtree.idom[blocks["right"]] is blocks["entry"]
        assert domtree.idom[blocks["join"]] is blocks["entry"]

    def test_dominates_reflexive_and_entry(self):
        func, blocks = blocks_of(DIAMOND)
        domtree = DominatorTree(func)
        assert domtree.dominates(blocks["entry"], blocks["join"])
        assert domtree.dominates(blocks["join"], blocks["join"])
        assert not domtree.dominates(blocks["left"], blocks["join"])

    def test_frontier_of_diamond(self):
        func, blocks = blocks_of(DIAMOND)
        domtree = DominatorTree(func)
        frontiers = dominance_frontiers(domtree)
        assert frontiers[blocks["left"]] == {blocks["join"]}
        assert frontiers[blocks["right"]] == {blocks["join"]}
        assert frontiers[blocks["entry"]] == set()

    def test_loop_header_in_own_frontier(self):
        func, blocks = blocks_of(LOOP)
        domtree = DominatorTree(func)
        frontiers = dominance_frontiers(domtree)
        assert blocks["header"] in frontiers[blocks["body"]]
        assert blocks["header"] in frontiers[blocks["header"]]

    def test_iterated_frontier(self):
        func, blocks = blocks_of(DIAMOND)
        domtree = DominatorTree(func)
        frontiers = dominance_frontiers(domtree)
        idf = iterated_dominance_frontier(frontiers, [blocks["left"]])
        assert idf == {blocks["join"]}

    def test_preorder_parent_first(self):
        func, blocks = blocks_of(DIAMOND)
        domtree = DominatorTree(func)
        order = domtree.preorder()
        assert order.index(blocks["entry"]) == 0


class TestLoops:
    def test_back_edge_found(self):
        func, blocks = blocks_of(LOOP)
        edges = find_back_edges(func)
        assert (blocks["body"], blocks["header"]) in edges

    def test_loop_body_blocks(self):
        func, blocks = blocks_of(LOOP)
        body = blocks_in_loops(func)
        assert blocks["header"] in body and blocks["body"] in body
        assert blocks["entry"] not in body and blocks["exit"] not in body

    def test_acyclic_has_no_loops(self):
        func, __ = blocks_of(DIAMOND)
        assert blocks_in_loops(func) == set()


class TestUnifyReturns:
    def test_multiple_returns_merged(self):
        module = parse_module("""
        func @f(%c) {
        entry:
          br %c, a, b
        a:
          ret %c
        b:
          ret %c
        }
        """)
        assert unify_returns(module) == 1
        func = module.get_function("f")
        rets = [i for i in func.instructions() if isinstance(i, RetInst)]
        assert len(rets) == 1
        assert func.exit_inst() is rets[0]

    def test_single_return_untouched(self):
        module = parse_module("""
        func @f() {
        entry:
          ret
        }
        """)
        assert unify_returns(module) == 0

    def test_distinct_values_need_phi(self):
        module = parse_module("""
        func @f(%c, %x, %y) {
        entry:
          br %c, a, b
        a:
          ret %x
        b:
          ret %y
        }
        """)
        unify_returns(module)
        func = module.get_function("f")
        exit_block = func.block("unified_exit")
        assert exit_block.phis()
        ret = func.exit_inst()
        assert ret is not None and ret.value is exit_block.phis()[0].dst


class TestMem2Reg:
    def test_straightline_promotion(self):
        module = compile_c("int main() { int x; x = 1; int y; y = x; return y; }")
        main = module.functions["main"]
        assert not [i for i in main.instructions() if isinstance(i, (AllocInst, LoadInst, StoreInst))]

    def test_join_inserts_phi_with_both_values(self):
        module = compile_c("""
            int g1; int g2;
            int main(int c) {
                int *p; p = &g1;
                if (c) { p = &g2; }
                *p = 1;
                return 0;
            }
        """)
        main = module.functions["main"]
        phis = [i for i in main.instructions() if isinstance(i, PhiInst)]
        assert len(phis) == 1
        assert len(phis[0].incomings) == 2

    def test_loop_variable_phi(self):
        module = compile_c("""
            int main() { int i; i = 0; while (i < 5) { i = i + 1; } return i; }
        """)
        main = module.functions["main"]
        phis = [i for i in main.instructions() if isinstance(i, PhiInst)]
        assert phis  # loop-carried value

    def test_escaped_slot_not_promoted(self):
        module = compile_c("""
            int *keep(int *p) { return p; }
            int main() { int x; int *p; p = keep(&x); *p = 1; return x; }
        """)
        main = module.functions["main"]
        allocs = [i for i in main.instructions() if isinstance(i, AllocInst)]
        assert any(a.obj.name == "x" for a in allocs)

    def test_undef_read_resolves_to_constant(self):
        # Read-before-write of a promoted local must not crash.
        module = compile_c("int main() { int x; return x; }")
        assert "main" in module.functions

    def test_promotion_is_ssa(self):
        from repro.ir.verifier import verify_module

        module = compile_c("""
            int main(int c) {
                int a; a = 0;
                if (c) { a = 1; } else { a = 2; }
                while (a < 10) { a = a + a; }
                return a;
            }
        """)
        verify_module(module, ssa=True)


class TestSingletons:
    def test_global_scalar_is_singleton(self):
        module = compile_c("int g; int main() { return 0; }")
        g = next(o for o in module.objects if o.name == "g")
        assert g.is_singleton

    def test_heap_never_singleton(self):
        module = compile_c("int main() { int *p = (int*)malloc(sizeof(int)); return 0; }")
        heap = next(o for o in module.objects if o.kind.value == "heap")
        assert not heap.is_singleton

    def test_global_array_not_singleton(self):
        module = compile_c("int a[8]; int main() { a[0] = 1; return 0; }")
        arr = next(o for o in module.objects if o.name == "a")
        assert not arr.is_singleton

    def test_stack_in_loop_not_singleton(self):
        module = compile_c("""
            void sink(int *p) { *p = 1; }
            int main() {
                int i;
                for (i = 0; i < 3; i = i + 1) { int x; sink(&x); }
                return 0;
            }
        """)
        x = next(o for o in module.objects if o.name == "x")
        assert not x.is_singleton

    def test_stack_in_recursive_function_not_singleton(self):
        module = compile_c("""
            void rec(int n) { int x; int *p; p = &x; *p = n; if (n) { rec(n - 1); } }
            int main() { rec(3); return 0; }
        """)
        x = next(o for o in module.objects if o.name == "x")
        assert not x.is_singleton

    def test_plain_stack_slot_is_singleton(self):
        module = compile_c("""
            int main() { int x; int *p; p = &x; *p = 1; return x; }
        """)
        x = next(o for o in module.objects if o.name == "x")
        assert x.is_singleton
