"""Unit tests for interner, worklists, union-find, and the digraph."""

import pytest

from repro.datastructs.graph import DiGraph, strongly_connected_components, topological_order
from repro.datastructs.interning import Interner
from repro.datastructs.unionfind import UnionFind
from repro.datastructs.worklist import FIFOWorkList, PriorityWorkList, WorkList


class TestInterner:
    def test_dense_ids(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0

    def test_value_of_roundtrip(self):
        interner = Interner()
        ident = interner.intern(frozenset({1, 2}))
        assert interner.value_of(ident) == frozenset({1, 2})

    def test_get_without_allocating(self):
        interner = Interner()
        assert interner.get("missing") is None
        interner.intern("x")
        assert interner.get("x") == 0

    def test_len_contains_iter(self):
        interner = Interner()
        interner.intern(1)
        interner.intern(2)
        assert len(interner) == 2
        assert 1 in interner
        assert list(interner) == [1, 2]


class TestWorkLists:
    @pytest.mark.parametrize("cls", [WorkList, FIFOWorkList])
    def test_dedup(self, cls):
        wl = cls()
        assert wl.push(1) is True
        assert wl.push(1) is False
        assert len(wl) == 1

    def test_lifo_order(self):
        wl = WorkList([1, 2, 3])
        assert wl.pop() == 3

    def test_fifo_order(self):
        wl = FIFOWorkList([1, 2, 3])
        assert wl.pop() == 1

    def test_repush_after_pop(self):
        wl = FIFOWorkList([1])
        wl.pop()
        assert wl.push(1) is True

    def test_contains_and_bool(self):
        wl = WorkList()
        assert not wl
        wl.push("x")
        assert "x" in wl
        assert wl

    def test_extend(self):
        wl = FIFOWorkList()
        wl.extend([1, 2, 2, 3])
        assert len(wl) == 3

    def test_priority_order(self):
        wl = PriorityWorkList(key=lambda item: -item)
        wl.extend([1, 5, 3])
        assert wl.pop() == 5
        assert wl.pop() == 3
        assert wl.pop() == 1


class TestUnionFind:
    def test_initial_self_parents(self):
        uf = UnionFind(3)
        assert all(uf.find(i) == i for i in range(3))

    def test_union_merges(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.same(0, 2)
        assert not uf.same(0, 3)

    def test_union_returns_representative(self):
        uf = UnionFind(2)
        rep = uf.union(0, 1)
        assert uf.find(0) == rep
        assert uf.find(1) == rep

    def test_add_and_ensure(self):
        uf = UnionFind()
        assert uf.add() == 0
        uf.ensure(5)
        assert len(uf) == 6
        assert uf.find(5) == 5

    def test_idempotent_union(self):
        uf = UnionFind(2)
        first = uf.union(0, 1)
        assert uf.union(0, 1) == first


class TestDiGraph:
    def test_add_edge_newness(self):
        g = DiGraph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(1, 2) is False

    def test_succs_preds(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        assert g.successors("a") == {"b", "c"}
        assert g.predecessors("b") == {"a"}

    def test_remove_edge(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_node(2)

    def test_counts(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert g.num_nodes() == 3
        assert g.num_edges() == 2

    def test_reachable_from(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(4, 5)
        assert g.reachable_from([1]) == {1, 2, 3}

    def test_edges_iteration(self):
        g = DiGraph()
        g.add_edge(1, 2)
        assert list(g.edges()) == [(1, 2)]


class TestSCC:
    def test_acyclic_singletons(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_cycle_detected(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)
        comps = strongly_connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[1, 2, 3]]

    def test_reverse_topological_order(self):
        # a -> b -> c : c's component must be emitted before b's before a's
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        comps = strongly_connected_components(g)
        order = [c[0] for c in comps]
        assert order.index("c") < order.index("b") < order.index("a")

    def test_self_loop_is_own_component(self):
        g = DiGraph()
        g.add_edge(1, 1)
        comps = strongly_connected_components(g)
        assert comps == [[1]]

    def test_two_cycles_bridged(self):
        g = DiGraph()
        for a, b in [(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)]:
            g.add_edge(a, b)
        comps = {frozenset(c) for c in strongly_connected_components(g)}
        assert comps == {frozenset({1, 2}), frozenset({3, 4})}


class TestTopologicalOrder:
    def test_linear_chain(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        order = topological_order(g)
        assert order.index(1) < order.index(2) < order.index(3)

    def test_cycle_raises(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        with pytest.raises(ValueError):
            topological_order(g)
