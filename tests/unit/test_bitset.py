"""Unit tests for the bit-set substrate (repro.datastructs.bitset)."""

import pytest

from repro.datastructs.bitset import BitSet, bits_of, count_bits, iter_bits


class TestFreeFunctions:
    def test_bits_of_empty(self):
        assert bits_of([]) == 0

    def test_bits_of_values(self):
        assert bits_of([0, 1, 5]) == 0b100011

    def test_bits_of_duplicates_collapse(self):
        assert bits_of([3, 3, 3]) == 0b1000

    def test_bits_of_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_of([-1])

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]

    def test_iter_bits_empty(self):
        assert list(iter_bits(0)) == []

    def test_iter_bits_large_index(self):
        assert list(iter_bits(1 << 1000)) == [1000]

    def test_count_bits(self):
        assert count_bits(0) == 0
        assert count_bits(0b1011) == 3
        assert count_bits((1 << 500) | 1) == 2


class TestBitSet:
    def test_construction_from_items(self):
        assert sorted(BitSet([4, 1, 4])) == [1, 4]

    def test_from_mask_no_copy(self):
        assert BitSet.from_mask(0b110).mask == 0b110

    def test_add_returns_newness(self):
        s = BitSet()
        assert s.add(7) is True
        assert s.add(7) is False

    def test_discard_and_remove(self):
        s = BitSet([1, 2])
        s.discard(1)
        s.discard(99)  # no-op
        assert 1 not in s
        with pytest.raises(KeyError):
            s.remove(99)
        s.remove(2)
        assert not s

    def test_update_reports_growth(self):
        s = BitSet([1])
        assert s.update(BitSet([2])) is True
        assert s.update(BitSet([1, 2])) is False
        assert s.update([5]) is True

    def test_set_algebra(self):
        a = BitSet([1, 2, 3])
        b = BitSet([3, 4])
        assert sorted(a | b) == [1, 2, 3, 4]
        assert sorted(a & b) == [3]
        assert sorted(a - b) == [1, 2]

    def test_subset_superset_disjoint(self):
        small = BitSet([1])
        big = BitSet([1, 2])
        assert small.issubset(big)
        assert big.issuperset(small)
        assert not small.isdisjoint(big)
        assert BitSet([9]).isdisjoint(big)

    def test_pop_lowest(self):
        s = BitSet([5, 2, 9])
        assert s.pop_lowest() == 2
        assert s.pop_lowest() == 5
        assert s.pop_lowest() == 9
        with pytest.raises(KeyError):
            s.pop_lowest()

    def test_len_bool_contains(self):
        s = BitSet([0, 63, 64])
        assert len(s) == 3
        assert bool(s)
        assert 64 in s
        assert -1 not in s

    def test_eq_with_python_sets(self):
        assert BitSet([1, 2]) == {1, 2}
        assert BitSet() == frozenset()
        assert BitSet([1]) != {2}

    def test_copy_is_independent(self):
        a = BitSet([1])
        b = a.copy()
        b.add(2)
        assert 2 not in a

    def test_intersection_difference_update(self):
        s = BitSet([1, 2, 3])
        s.intersection_update(BitSet([2, 3, 4]))
        assert sorted(s) == [2, 3]
        s.difference_update(BitSet([3]))
        assert sorted(s) == [2]

    def test_hashable_snapshot(self):
        assert hash(BitSet([1, 2])) == hash(BitSet([2, 1]))

    def test_clear(self):
        s = BitSet([1, 2])
        s.clear()
        assert len(s) == 0
