"""Unit tests for the shared staged-solver machinery (solvers.base)."""

import pytest

from repro.frontend import compile_c
from repro.ir.values import ObjectKind
from repro.pipeline import AnalysisPipeline
from repro.solvers.base import SolverStats
from repro.solvers.sfs import SFSAnalysis


@pytest.fixture
def solver():
    module = compile_c("""
        int g; int arr[3];
        int main() { g = 1; arr[0] = 2; return g; }
    """)
    pipeline = AnalysisPipeline(module)
    return module, SFSAnalysis(pipeline.fresh_svfg())


class TestStrongUpdateTarget:
    def test_single_singleton_is_su(self, solver):
        module, analysis = solver
        g = next(o for o in module.objects if o.name == "g")
        assert g.is_singleton
        assert analysis.strong_update_target(1 << g.id) == g.id

    def test_multiple_targets_never_su(self, solver):
        module, analysis = solver
        g = next(o for o in module.objects if o.name == "g")
        arr = next(o for o in module.objects if o.name == "arr")
        assert analysis.strong_update_target((1 << g.id) | (1 << arr.id)) is None

    def test_non_singleton_never_su(self, solver):
        module, analysis = solver
        arr = next(o for o in module.objects if o.name == "arr")
        assert not arr.is_singleton  # arrays collapse
        assert analysis.strong_update_target(1 << arr.id) is None

    def test_empty_mask_never_su(self, solver):
        __, analysis = solver
        assert analysis.strong_update_target(0) is None


class TestSolverStats:
    def test_total_time_sums_phases(self):
        stats = SolverStats(pre_time=1.5, solve_time=2.5)
        assert stats.total_time() == 4.0

    def test_vsfs_result_carries_both_phases(self):
        module = compile_c("int *g; int x; int main() { g = &x; return 0; }")
        result = AnalysisPipeline(module).vsfs()
        assert result.stats.pre_time > 0
        assert result.stats.solve_time > 0
        assert result.stats.analysis == "vsfs"


class TestResultHelpers:
    def test_snapshot_skips_empty(self):
        module = compile_c("int *g; int x; int main() { g = &x; return 0; }")
        result = AnalysisPipeline(module).vsfs()
        snapshot = result.snapshot()
        assert snapshot and all(mask for mask in snapshot.values())

    def test_points_to_unregistered_variable_empty(self):
        from repro.ir.values import Variable

        module = compile_c("int main() { return 0; }")
        result = AnalysisPipeline(module).vsfs()
        assert result.points_to(Variable("ghost")) == set()

    def test_may_alias_symmetric(self):
        module = compile_c("""
            int x;
            void sink_a(int *p) { }
            void sink_b(int *p) { }
            int main() { sink_a(&x); sink_b(&x); return 0; }
        """)
        result = AnalysisPipeline(module).vsfs()
        a = module.functions["sink_a"].params[0]
        b = module.functions["sink_b"].params[0]
        assert result.may_alias(a, b) and result.may_alias(b, a)
