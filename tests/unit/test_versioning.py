"""Unit tests for object versioning (§IV-C): prelabelling, melding,
interning, and the induced propagation constraints."""

import pytest

from repro.core.versioning import ObjectVersioning, version_objects
from repro.errors import AnalysisError
from repro.frontend import compile_c
from repro.ir import CallInst, LoadInst, StoreInst
from repro.pipeline import AnalysisPipeline
from repro.svfg.nodes import InstNode


def build(src):
    module = compile_c(src)
    pipeline = AnalysisPipeline(module)
    return module, pipeline


def node_of(svfg, cls, func=None, index=0):
    found = [
        node
        for node in svfg.nodes
        if isinstance(node, InstNode) and isinstance(node.inst, cls)
        and (func is None or node.function.name == func)
    ]
    return found[index]


class TestPrelabelling:
    def test_store_yields_fresh_version(self):
        module, pipeline = build("""
            int g;
            int main() { g = 1; return g; }
        """)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        store = node_of(svfg, StoreInst, "main")
        g = next(o for o in module.objects if o.name == "g")
        assert versioning.yielded_version(store.id, g.id) != ObjectVersioning.EPSILON

    def test_store_yield_differs_from_consume(self):
        module, pipeline = build("""
            int g;
            int main() { g = 1; g = 2; return g; }
        """)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        g = next(o for o in module.objects if o.name == "g")
        second = node_of(svfg, StoreInst, "main", index=1)
        assert versioning.consumed_version(second.id, g.id) != \
            versioning.yielded_version(second.id, g.id)

    def test_two_stores_get_distinct_versions(self):
        module, pipeline = build("""
            int g;
            int main(int c) { if (c) { g = 1; } else { g = 2; } return g; }
        """)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        g = next(o for o in module.objects if o.name == "g")
        s1 = node_of(svfg, StoreInst, "main", index=0)
        s2 = node_of(svfg, StoreInst, "main", index=1)
        assert versioning.yielded_version(s1.id, g.id) != \
            versioning.yielded_version(s2.id, g.id)

    def test_prelabel_count_recorded(self):
        __, pipeline = build("""
            int g;
            int main() { g = 1; return g; }
        """)
        versioning = ObjectVersioning(pipeline.fresh_svfg()).run()
        assert versioning.stats.prelabels >= 1


class TestSharing:
    def test_load_consumes_store_yield_in_straight_line(self):
        module, pipeline = build("""
            int g;
            int main() { g = 1; return g; }
        """)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        g = next(o for o in module.objects if o.name == "g")
        store = node_of(svfg, StoreInst, "main")
        load = node_of(svfg, LoadInst, "main")
        assert versioning.consumed_version(load.id, g.id) == \
            versioning.yielded_version(store.id, g.id)

    def test_two_loads_share_a_version(self):
        """The paper's headline: loads relying on the same modifications of
        o consume the *same* version and therefore share one points-to set."""
        module, pipeline = build("""
            int *g; int x;
            int main() {
                g = &x;
                int *a; a = g;
                int *b; b = g;
                return 0;
            }
        """)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        g = next(o for o in module.objects if o.name == "g")
        load1 = node_of(svfg, LoadInst, "main", index=0)
        load2 = node_of(svfg, LoadInst, "main", index=1)
        v1 = versioning.consumed_version(load1.id, g.id)
        v2 = versioning.consumed_version(load2.id, g.id)
        assert v1 == v2 != ObjectVersioning.EPSILON

    def test_loads_across_store_get_different_versions(self):
        module, pipeline = build("""
            int *g; int x; int y;
            int main() {
                g = &x;
                int *a; a = g;
                g = &y;
                int *b; b = g;
                return 0;
            }
        """)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        g = next(o for o in module.objects if o.name == "g")
        load1 = node_of(svfg, LoadInst, "main", index=0)
        load2 = node_of(svfg, LoadInst, "main", index=1)
        assert versioning.consumed_version(load1.id, g.id) != \
            versioning.consumed_version(load2.id, g.id)

    def test_unreachable_object_is_epsilon(self):
        module, pipeline = build("""
            int g;
            int main() { return g; }
        """)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        g = next(o for o in module.objects if o.name == "g")
        load = node_of(svfg, LoadInst, "main")
        assert versioning.consumed_version(load.id, g.id) == ObjectVersioning.EPSILON


class TestConstraints:
    def test_shared_version_means_no_constraint(self):
        """A def with a single chain of uses collapses to zero A-PROP work."""
        __, pipeline = build("""
            int *g; int x;
            int main() { g = &x; int *a; a = g; int *b; b = g; return 0; }
        """)
        versioning = ObjectVersioning(pipeline.fresh_svfg()).run()
        # every edge from the single store shares the same version pair
        assert versioning.num_constraints() == 0

    def test_join_requires_constraints(self):
        __, pipeline = build("""
            int g;
            int main(int c) { if (c) { g = 1; } else { g = 2; } return g; }
        """)
        versioning = ObjectVersioning(pipeline.fresh_svfg()).run()
        # two store versions meld into the memphi'd consumed version
        assert versioning.num_constraints() >= 2

    def test_add_constraint_dedups(self):
        __, pipeline = build("int g; int main() { g = 1; return g; }")
        versioning = ObjectVersioning(pipeline.fresh_svfg()).run()
        assert versioning.add_constraint(0, 1, 2) is True
        assert versioning.add_constraint(0, 1, 2) is False
        assert versioning.add_constraint(0, 3, 3) is False  # self-loop


class TestStrategies:
    SRC = """
        struct node { int v; struct node *f0; struct node *f1; };
        struct node *g0; struct node *g1;
        fnptr h;
        struct node *work(struct node *a, struct node *b) {
            a->f0 = b;
            g0 = a;
            return a->f1;
        }
        int main(int c) {
            g0 = (struct node*)malloc(sizeof(struct node));
            g1 = (struct node*)malloc(sizeof(struct node));
            h = work;
            struct node *r = h(g0, g1);
            int i;
            for (i = 0; i < 3; i = i + 1) { r = work(g1, g0); }
            return 0;
        }
    """

    def test_scc_equals_fixpoint_labels(self):
        __, pipeline = build(self.SRC)
        scc = ObjectVersioning(pipeline.fresh_svfg()).run(
            strategy="scc", release_masks=False)
        fixpoint = ObjectVersioning(pipeline.fresh_svfg()).run(
            strategy="fixpoint", release_masks=False)
        assert scc.consumed_masks == fixpoint.consumed_masks
        assert scc.yielded_masks == fixpoint.yielded_masks
        assert scc.num_constraints() == fixpoint.num_constraints()

    def test_unknown_strategy_rejected(self):
        __, pipeline = build("int g; int main() { g = 1; return g; }")
        with pytest.raises(AnalysisError):
            ObjectVersioning(pipeline.fresh_svfg()).run(strategy="nope")

    def test_version_objects_helper(self):
        __, pipeline = build("int g; int main() { g = 1; return g; }")
        versioning = version_objects(pipeline.fresh_svfg())
        assert versioning.stats.time > 0

    def test_versions_fewer_than_nodes(self):
        """Interning must make versions far sparser than SVFG nodes."""
        __, pipeline = build(self.SRC)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        assert versioning.stats.versions < len(svfg.nodes)
