"""Unit tests for the mini-C frontend: lexer, parser, lowering."""

import pytest

from repro.errors import ParseError
from repro.frontend import compile_c
from repro.frontend.cparser import parse_c
from repro.frontend.ctypes import CArray, CPtr, CStruct, INT_TYPE
from repro.frontend.lexer import tokenize
from repro.ir import AllocInst, CallInst, FieldInst, LoadInst, PhiInst, StoreInst
from repro.ir.module import INIT_FUNCTION
from repro.ir.values import ObjectKind


class TestLexer:
    def test_keywords_vs_identifiers(self):
        kinds = [(t.kind, t.text) for t in tokenize("int intx")][:-1]
        assert kinds == [("kw", "int"), ("ident", "intx")]

    def test_operators_longest_match(self):
        texts = [t.text for t in tokenize("a->b <= c == d")][:-1]
        assert texts == ["a", "->", "b", "<=", "c", "==", "d"]

    def test_comments_skipped(self):
        texts = [t.text for t in tokenize("a // line\n /* block\n */ b")][:-1]
        assert texts == ["a", "b"]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_character_rejected(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")


class TestParser:
    def test_struct_layout_flattened(self):
        __, structs = parse_c("""
            struct inner { int a; int b; };
            struct outer { int x; struct inner i; int *p; };
        """)
        outer = structs.lookup("outer")
        assert outer.field_offset("x") == 0
        assert outer.field_offset("i") == 1
        assert outer.field_offset("p") == 3  # inner occupies 2 slots
        assert outer.flattened_size() == 4

    def test_unknown_field_raises(self):
        __, structs = parse_c("struct s { int a; };")
        with pytest.raises(ParseError):
            structs.lookup("s").field_offset("nope")

    def test_precedence(self):
        program, __ = parse_c("int main() { int x; x = 1 + 2 * 3 < 4 && 5; return x; }")
        assert program.functions[0].name == "main"

    def test_function_declaration_without_body(self):
        program, __ = parse_c("int helper(int x);")
        assert program.functions[0].body is None

    def test_global_with_initialiser(self):
        program, __ = parse_c("int g = 4;")
        assert program.globals[0].init is not None

    def test_pointer_depth(self):
        program, __ = parse_c("int ***p;")
        ctype = program.globals[0].ctype
        depth = 0
        while isinstance(ctype, CPtr):
            depth += 1
            ctype = ctype.pointee
        assert depth == 3 and ctype is INT_TYPE

    def test_array_decl(self):
        program, __ = parse_c("int a[10];")
        assert isinstance(program.globals[0].ctype, CArray)

    def test_missing_semicolon_reported(self):
        with pytest.raises(ParseError):
            parse_c("int main() { int x }")


def _insts(module, cls, func=None):
    out = []
    for function in module.functions.values():
        if func is not None and function.name != func:
            continue
        out.extend(inst for inst in function.instructions() if isinstance(inst, cls))
    return out


class TestLowering:
    def test_globals_lowered_into_init(self):
        module = compile_c("int *g; int main() { return 0; }")
        init = module.functions[INIT_FUNCTION]
        allocs = [i for i in init.instructions() if isinstance(i, AllocInst)]
        assert any(a.obj.kind is ObjectKind.GLOBAL and a.obj.name == "g" for a in allocs)
        # __module_init__ ends by calling main
        calls = [i for i in init.instructions() if isinstance(i, CallInst)]
        assert any(not c.is_indirect() and c.callee.name == "main" for c in calls)

    def test_malloc_of_struct_sets_fields(self):
        module = compile_c("""
            struct s { int a; int *b; };
            int main() { struct s *p = (struct s*)malloc(sizeof(struct s)); return 0; }
        """)
        heaps = [o for o in module.objects if o.kind is ObjectKind.HEAP]
        assert heaps and heaps[0].num_fields == 2

    def test_member_arrow_lowered_to_field(self):
        module = compile_c("""
            struct s { int a; int *b; };
            int main() { struct s *p = (struct s*)malloc(sizeof(struct s));
                         p->b = null; return 0; }
        """)
        fields = _insts(module, FieldInst, "main")
        assert len(fields) == 1 and fields[0].field == 1

    def test_first_field_aliases_base(self):
        module = compile_c("""
            struct s { int *a; int *b; };
            int main() { struct s *p = (struct s*)malloc(sizeof(struct s));
                         p->a = null; return 0; }
        """)
        assert not _insts(module, FieldInst, "main")  # offset 0 => base pointer

    def test_address_taken_local_not_promoted(self):
        module = compile_c("""
            int main() { int x; int *p; p = &x; *p = 3; return x; }
        """)
        allocs = _insts(module, AllocInst, "main")
        assert any(a.obj.name == "x" for a in allocs)  # &x kept x in memory

    def test_plain_local_promoted(self):
        module = compile_c("int main() { int x; x = 3; return x; }")
        assert not _insts(module, AllocInst, "main")

    def test_branch_join_creates_phi(self):
        module = compile_c("""
            int g1; int g2;
            int main(int c) {
                int *p;
                if (c) { p = &g1; } else { p = &g2; }
                *p = 1;
                return 0;
            }
        """)
        assert _insts(module, PhiInst, "main")

    def test_function_address_and_indirect_call(self):
        module = compile_c("""
            struct node { int v; };
            struct node *id(struct node *x, struct node *y) { return x; }
            fnptr h;
            int main() { h = id; struct node *r = h(null, null); return 0; }
        """)
        calls = _insts(module, CallInst, "main")
        assert any(call.is_indirect() for call in calls)
        funaddrs = [a for a in _insts(module, AllocInst, "main")
                    if a.obj.kind is ObjectKind.FUNCTION]
        assert funaddrs

    def test_array_collapses_to_object(self):
        module = compile_c("""
            int main() { int a[4]; int *p; p = &a[2]; *p = 1; return a[0]; }
        """)
        arrays = [o for o in module.objects if o.is_array]
        assert arrays

    def test_while_loop_structure(self):
        module = compile_c("""
            int main() { int i; i = 0; while (i < 3) { i = i + 1; } return i; }
        """)
        main = module.functions["main"]
        names = [b.name for b in main.blocks]
        assert any("while.cond" in n for n in names)
        assert any("while.body" in n for n in names)

    def test_return_mid_function_gets_unreachable_tail(self):
        module = compile_c("""
            int main() { return 1; int x; x = 2; return x; }
        """)
        # verifier (run by compile_c) already accepted it; every block ends
        for block in module.functions["main"].blocks:
            assert block.is_terminated()

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(ParseError, match="undeclared"):
            compile_c("int main() { y = 1; return 0; }")

    def test_call_to_unknown_function_rejected(self):
        with pytest.raises(ParseError, match="undeclared function"):
            compile_c("int main() { nope(); return 0; }")

    def test_deref_non_pointer_rejected(self):
        with pytest.raises(ParseError):
            compile_c("int main() { int x; *x = 1; return 0; }")

    def test_nested_struct_member_flattened_offset(self):
        module = compile_c("""
            struct inner { int a; int *p; };
            struct outer { int x; struct inner i; };
            struct outer *g;
            int main() {
                g = (struct outer*)malloc(sizeof(struct outer));
                g->i.p = null;
                return 0;
            }
        """)
        fields = _insts(module, FieldInst, "main")
        # outer.i at offset 1, inner.p at +1 -> flattened offset 2
        assert [f.field for f in fields] == [1, 1] or [f.field for f in fields] == [2]

    def test_params_spilled_then_promoted(self):
        module = compile_c("""
            int add(int a, int b) { return a + b; }
            int main() { return add(1, 2); }
        """)
        assert not _insts(module, AllocInst, "add")

    def test_address_of_param_keeps_alloca(self):
        module = compile_c("""
            void f(int a) { int *p; p = &a; *p = 2; }
            int main() { f(1); return 0; }
        """)
        assert _insts(module, AllocInst, "f")
