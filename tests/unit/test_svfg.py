"""Unit tests for SVFG construction (direct/indirect edges, δ nodes, OTF)."""

import pytest

from repro.frontend import compile_c
from repro.ir import CallInst, LoadInst, StoreInst
from repro.pipeline import AnalysisPipeline
from repro.svfg.nodes import (
    ActualINNode,
    ActualOUTNode,
    FormalINNode,
    FormalOUTNode,
    InstNode,
    MemPhiNode,
)


def build(src):
    module = compile_c(src)
    pipeline = AnalysisPipeline(module)
    return module, pipeline.svfg()


def inst_node(svfg, cls, func=None):
    for node in svfg.nodes:
        if isinstance(node, InstNode) and isinstance(node.inst, cls):
            if func is None or node.function.name == func:
                return node
    raise AssertionError(f"no {cls.__name__} node")


class TestStructure:
    SRC = """
        int g;
        int main() { g = 1; return g; }
    """

    def test_every_instruction_has_a_node(self):
        module, svfg = build(self.SRC)
        insts = sum(1 for f in module.functions.values() for __ in f.instructions())
        assert len(svfg.inst_node) == insts

    def test_store_to_load_indirect_edge(self):
        module, svfg = build(self.SRC)
        store = inst_node(svfg, StoreInst, "main")
        load = inst_node(svfg, LoadInst, "main")
        g = next(o for o in module.objects if o.name == "g")
        assert load.id in svfg.ind_succs[store.id].get(g.id, [])

    def test_direct_edge_def_to_use(self):
        module, svfg = build("""
            int g;
            int main() { int *p; p = &g; *p = 1; return 0; }
        """)
        # def of the global address variable (AllocInst in init) reaches the
        # store node in main.
        store = inst_node(svfg, StoreInst, "main")
        g_var = next(v for v in module.variables if v.name == "g")
        def_node = svfg.var_def_node[g_var.id]
        assert store.id in svfg.direct_succs[def_node]

    def test_stats_columns_present(self):
        __, svfg = build(self.SRC)
        stats = svfg.stats()
        assert stats.num_nodes == len(svfg.nodes)
        assert stats.num_indirect_edges == svfg.num_indirect_edges()
        assert stats.num_direct_edges > 0

    def test_edge_deduplication(self):
        __, svfg = build(self.SRC)
        assert svfg.add_indirect_edge(0, 1, 0) is True
        assert svfg.add_indirect_edge(0, 1, 0) is False
        assert svfg.add_direct_edge(0, 1) in (True, False)
        before = svfg.num_direct_edges()
        svfg.add_direct_edge(0, 1)
        assert svfg.num_direct_edges() == before


class TestInterprocedural:
    SRC = """
        int g;
        void writer() { g = 1; }
        int main() { writer(); return g; }
    """

    def test_actual_formal_nodes_created(self):
        module, svfg = build(self.SRC)
        kinds = {type(n) for n in svfg.nodes}
        assert {ActualINNode, ActualOUTNode, FormalINNode, FormalOUTNode} <= kinds

    def test_direct_call_connected_at_build(self):
        module, svfg = build(self.SRC)
        main = module.functions["main"]
        writer = module.functions["writer"]
        call = next(i for i in main.instructions() if isinstance(i, CallInst)
                    if not i.is_indirect() and i.callee.name == "writer")
        assert svfg.is_connected(call, writer)
        g = next(o for o in module.objects if o.name == "g")
        ain = svfg.actual_in[call][g.id]
        fin = svfg.formal_in[writer][g.id]
        assert fin in svfg.ind_succs[ain].get(g.id, [])
        fout = svfg.formal_out[writer][g.id]
        aout = svfg.actual_out[call][g.id]
        assert aout in svfg.ind_succs[fout].get(g.id, [])

    def test_bypass_edge_into_actual_out(self):
        """The pre-call version of g must flow into the post-call node."""
        module, svfg = build(self.SRC)
        main = module.functions["main"]
        call = next(i for i in main.instructions() if isinstance(i, CallInst))
        g = next(o for o in module.objects if o.name == "g")
        aout = svfg.actual_out[call][g.id]
        preds = {src for src, oid in svfg.ind_preds[aout] if oid == g.id}
        fout = svfg.formal_out[module.functions["writer"]][g.id]
        assert preds - {fout}, "ActualOUT must also have a local bypass pred"

    def test_no_delta_nodes_without_indirect_calls(self):
        __, svfg = build(self.SRC)
        assert svfg.delta_nodes == set()


class TestDeltaNodes:
    SRC = """
        struct node { int v; struct node *f0; };
        struct node *g;
        struct node *target(struct node *a, struct node *b) { g = a; return b; }
        fnptr h;
        int main() {
            h = target;
            struct node *r = h(null, null);
            return 0;
        }
    """

    def test_formal_in_of_indirect_target_is_delta(self):
        module, svfg = build(self.SRC)
        target = module.functions["target"]
        fins = set(svfg.formal_in.get(target, {}).values())
        assert fins and fins <= svfg.delta_nodes

    def test_actual_out_of_indirect_call_is_delta(self):
        module, svfg = build(self.SRC)
        main = module.functions["main"]
        call = next(i for i in main.instructions()
                    if isinstance(i, CallInst) and i.is_indirect())
        aouts = set(svfg.actual_out.get(call, {}).values())
        assert aouts and aouts <= svfg.delta_nodes

    def test_indirect_call_not_connected_at_build(self):
        module, svfg = build(self.SRC)
        main = module.functions["main"]
        call = next(i for i in main.instructions()
                    if isinstance(i, CallInst) and i.is_indirect())
        assert not svfg.is_connected(call, module.functions["target"])

    def test_connect_callsite_returns_touched_sources(self):
        module, svfg = build(self.SRC)
        main = module.functions["main"]
        call = next(i for i in main.instructions()
                    if isinstance(i, CallInst) and i.is_indirect())
        touched = svfg.connect_callsite(call, module.functions["target"])
        assert touched
        assert svfg.is_connected(call, module.functions["target"])
        # idempotent
        assert svfg.connect_callsite(call, module.functions["target"]) == []


class TestMemPhiNodes:
    def test_memphi_node_materialised(self):
        module, svfg = build("""
            int g;
            int main(int c) {
                if (c) { g = 1; } else { g = 2; }
                return g;
            }
        """)
        memphis = [n for n in svfg.nodes if isinstance(n, MemPhiNode)]
        assert any(n.obj.name == "g" for n in memphis)
        # both stores feed the memphi; the memphi feeds the load
        phi = next(n for n in memphis if n.obj.name == "g")
        g = phi.obj
        preds = {src for src, oid in svfg.ind_preds[phi.id] if oid == g.id}
        assert len(preds) == 2
        load = inst_node(svfg, LoadInst, "main")
        assert load.id in svfg.ind_succs[phi.id].get(g.id, [])
