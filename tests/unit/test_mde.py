"""The multi-level deduplication engine: batch memo, sharing, rebind."""

from repro.datastructs.arena import PTArena
from repro.datastructs.mde import BatchMemo, MdeEngine
from repro.datastructs.ptrepo import PTRepo


class TestBatchMemo:
    def test_apply_matches_direct_computation(self):
        repo = PTRepo()
        memo = BatchMemo(repo)
        entry = repo.intern(0b0011)
        delta = repo.intern(0b0110)
        new, added = memo.apply(entry, delta)
        assert repo.mask(new) == 0b0111
        assert repo.mask(added) == 0b0100

    def test_no_growth_returns_entry_and_empty(self):
        repo = PTRepo()
        memo = BatchMemo(repo)
        entry = repo.intern(0b111)
        delta = repo.intern(0b010)  # subset: nothing to add
        new, added = memo.apply(entry, delta)
        assert new == entry and added == 0
        assert not added  # kernels branch on truthiness, like raw ``added``

    def test_repeat_batches_hit(self):
        repo = PTRepo()
        memo = BatchMemo(repo)
        entry, delta = repo.intern(0b01), repo.intern(0b10)
        first = memo.apply(entry, delta)
        assert (memo.hits, memo.misses) == (0, 1)
        assert memo.apply(entry, delta) == first
        assert (memo.hits, memo.misses) == (1, 1)
        assert memo.entries == 1

    def test_gather_mask_key_normalisation(self):
        repo = PTRepo()
        memo = BatchMemo(repo)
        a, b = repo.intern(0b001), repo.intern(0b110)
        expect = 0b111
        assert memo.gather_mask([a, b]) == expect
        # Permutation, duplicates and empties collapse to the same key.
        assert memo.gather_mask([b, 0, a, a]) == expect
        assert memo.hits == 1 and memo.misses == 1

    def test_gather_trivial_cases_skip_the_memo(self):
        repo = PTRepo()
        memo = BatchMemo(repo)
        only = repo.intern(0b1010)
        assert memo.gather_mask([]) == 0
        assert memo.gather_mask([0, 0]) == 0
        assert memo.gather_mask([only, 0]) == 0b1010
        assert memo.hits == 0 and memo.misses == 0 and memo.entries == 0


class TestMdeEngine:
    def test_shared_engine_across_solvers(self):
        """Two solvers over one engine share interner and batch memo —
        the cross-rung hash-consing carrier."""
        from repro.bench.workloads import suite_program
        from repro.pipeline import AnalysisPipeline
        from repro.solvers.sfs import SFSAnalysis

        pipeline = AnalysisPipeline(suite_program("du"))
        engine = MdeEngine()
        first = SFSAnalysis(pipeline.fresh_svfg(), mde=engine)
        second = SFSAnalysis(pipeline.fresh_svfg(), mde=engine)
        assert first.ptrepo is engine.repo
        assert second.ptrepo is engine.repo
        assert first.batch is engine.batch and second.batch is engine.batch

    def test_mde_batch_flag_disables_the_memo_only(self):
        from repro.bench.workloads import suite_program
        from repro.pipeline import AnalysisPipeline
        from repro.solvers.sfs import SFSAnalysis

        pipeline = AnalysisPipeline(suite_program("du"))
        solver = SFSAnalysis(pipeline.fresh_svfg(), mde=MdeEngine(),
                             mde_batch=False)
        assert solver.batch is None and solver.ptrepo is not None
        assert solver.stats.mde_batch is False

    def test_open_without_path_is_arena_less(self):
        engine = MdeEngine.open(None)
        assert engine.arena is None and engine.arena_preloaded == 0

    def test_open_binds_and_flush_appends(self, tmp_path):
        path = str(tmp_path / "arena.bin")
        engine = MdeEngine.open(path)
        assert engine.arena is not None
        engine.repo.intern(0b101)
        engine.repo.intern(0b11)
        assert engine.flush() == 2
        engine.arena.close()
        warm = MdeEngine.open(path)
        try:
            assert warm.arena_preloaded == 2  # empty set is pre-interned
            assert warm.repo.get(0b101) is not None
            assert warm.repo.get(0b11) is not None
            assert warm.flush() == 0  # nothing new since the watermark
        finally:
            warm.arena.close()

    def test_attach_only_missing_file_never_creates(self, tmp_path):
        path = str(tmp_path / "absent.bin")
        engine = MdeEngine.open(path, attach_only=True)
        assert engine.arena is None
        assert not (tmp_path / "absent.bin").exists()

    def test_corrupt_arena_quarantined_for_writers(self, tmp_path):
        path = tmp_path / "arena.bin"
        path.write_bytes(b"garbage-not-an-arena-header!")
        engine = MdeEngine.open(str(path))
        assert engine.arena_quarantined is not None
        assert engine.arena is not None  # recreated fresh after quarantine
        assert len(engine.arena) == 1
        engine.arena.close()

    def test_corrupt_arena_skipped_for_attach_only(self, tmp_path):
        path = tmp_path / "arena.bin"
        path.write_bytes(b"garbage-not-an-arena-header!")
        engine = MdeEngine.open(str(path), attach_only=True)
        assert engine.arena is None
        assert engine.arena_quarantined is None
        assert path.read_bytes().startswith(b"garbage")  # untouched

    def test_misaligned_bind_warms_but_never_flushes(self, tmp_path):
        path = str(tmp_path / "arena.bin")
        writer = PTArena.open(path)
        writer.append_masks([0b1])
        writer.close()
        repo = PTRepo()
        repo.intern(0b1000)  # repo id 1 != arena record 1
        engine = MdeEngine(repo=repo)
        arena = PTArena.open(path)
        try:
            engine.bind_arena(arena)
            assert engine.repo.get(0b1) is not None  # warmed
            repo.intern(0b1100)
            assert engine.flush() == 0  # alignment lost, append refused
            assert len(arena) == 2
        finally:
            arena.close()


class TestRebindOnRestore:
    def test_checkpoint_restore_drops_stale_ids(self):
        """Restoring swaps in a fresh repository; keeping the old batch
        memo would resolve new ids against old masks.  ``_rebind_mde``
        gives the solver a private engine over the restored repo."""
        from repro.bench.workloads import SUITE, suite_program
        from repro.pipeline import AnalysisPipeline

        pipeline = AnalysisPipeline(suite_program("du"))
        solver_svfg = pipeline.fresh_svfg()
        from repro.solvers.sfs import SFSAnalysis

        solver = SFSAnalysis(solver_svfg)
        solver.run()
        snapshot = solver.snapshot_state()
        old_engine = solver.mde

        restored = SFSAnalysis(pipeline.fresh_svfg())
        restored.restore_state(snapshot, solver.stats.nodes_processed)
        assert restored.mde is not old_engine
        assert restored.mde.repo is restored.ptrepo
        assert restored.batch is restored.mde.batch
        assert restored.batch.repo is restored.ptrepo
        assert restored.mde.arena is None  # arena binding never survives
