"""Unit tests for the on-disk stage cache (repro.engine.cache)."""

import glob
import json
import os

import pytest

from repro.engine import STAGE_CACHE_SCHEMA, Engine, StageCache, StageContext
from repro.errors import CheckpointError

SRC = """
int *g; int x; int y;
int main() { g = &x; int *a; a = g; g = &y; return 0; }
"""

OTHER_SRC = "int *p; int z; int main() { p = &z; return 0; }"

#: Every substrate stage the cache covers, with its storage mode.
CACHED_STAGES = {
    "andersen": "codec",
    "modref": "replay",
    "memssa": "replay",
    "svfg": "replay",
    "versioning": "replay",
}


def engine_with_cache(tmp_path, source=SRC, **ctx_kwargs):
    cache = StageCache(str(tmp_path / "stages"))
    ctx = StageContext(module=None, source=source, language="c",
                       cache=cache, **ctx_kwargs)
    return Engine(ctx), cache


class TestColdRun:
    def test_populates_every_cached_stage(self, tmp_path):
        engine, cache = engine_with_cache(tmp_path)
        engine.ensure("versioning")
        assert cache.hits == 0
        assert cache.misses == len(CACHED_STAGES)
        for name in CACHED_STAGES:
            path = cache.entry_path(name, engine.fingerprint(name))
            assert os.path.exists(path), name

    def test_entries_record_mode_and_fingerprint(self, tmp_path):
        engine, cache = engine_with_cache(tmp_path)
        engine.ensure("versioning")
        for name, mode in CACHED_STAGES.items():
            path = cache.entry_path(name, engine.fingerprint(name))
            with open(path) as handle:
                doc = json.load(handle)
            assert doc["meta"]["stage"] == name
            assert doc["meta"]["mode"] == mode
            assert doc["meta"]["fingerprint"] == engine.fingerprint(name)


class TestWarmRun:
    def test_hits_every_cached_stage(self, tmp_path):
        cold, _ = engine_with_cache(tmp_path)
        cold.ensure("versioning")
        warm, cache = engine_with_cache(tmp_path)
        warm.ensure("versioning")
        assert cache.hits == len(CACHED_STAGES)
        assert cache.misses == 0
        records = {r.stage: r for r in warm.trace.records}
        for name, mode in CACHED_STAGES.items():
            assert records[name].cache == mode, name
            assert records[name].cache_hit

    def test_result_bit_identical_to_cold(self, tmp_path):
        cold, _ = engine_with_cache(tmp_path)
        cold_snapshot = cold.solve("vsfs").snapshot()
        warm, cache = engine_with_cache(tmp_path)
        warm_snapshot = warm.solve("vsfs").snapshot()
        # solve("vsfs") ensures through the SVFG; the solver versions its
        # own copy, so 4 substrate stages hit (no versioning entry).
        assert cache.hits == 4
        assert warm_snapshot == cold_snapshot

    def test_codec_hit_skips_andersen_solve(self, tmp_path):
        cold, _ = engine_with_cache(tmp_path)
        cold.ensure("andersen")
        warm, _ = engine_with_cache(tmp_path)
        warm.ensure("andersen")
        record = warm.trace.record_for("andersen")
        # A codec hit decodes the stored result instead of re-solving.
        assert record.cache == "codec"
        assert record.artifact_bytes and record.artifact_bytes > 0

    def test_governed_andersen_bypasses_cache(self, tmp_path):
        from repro.runtime.budget import Budget

        cold, _ = engine_with_cache(tmp_path)
        cold.ensure("versioning")
        warm, cache = engine_with_cache(tmp_path)
        warm.ensure("prepare")
        hits_before = cache.hits
        meter = Budget(wall_seconds=300.0).meter()
        meter.start()
        try:
            warm.solve("andersen", meter=meter)
        finally:
            meter.stop()
        assert cache.hits == hits_before  # governed run never loads cache


class TestInvalidation:
    def test_source_change_misses(self, tmp_path):
        cold, _ = engine_with_cache(tmp_path)
        cold.ensure("versioning")
        other, cache = engine_with_cache(tmp_path, source=OTHER_SRC)
        other.ensure("versioning")
        assert cache.hits == 0
        assert cache.misses == len(CACHED_STAGES)

    def test_ablation_flags_do_not_invalidate_substrate(self, tmp_path):
        cold, _ = engine_with_cache(tmp_path)
        cold.ensure("versioning")
        ablated, cache = engine_with_cache(tmp_path, delta=False,
                                           ptrepo=False)
        ablated.ensure("versioning")
        assert cache.hits == len(CACHED_STAGES)


class TestCorruption:
    """Strict mode: corruption raises (the pre-resilience contract the
    engine-level self-healing defaults away from; see TestSelfHealing)."""

    def _cold_entry(self, tmp_path, stage):
        engine, cache = engine_with_cache(tmp_path)
        engine.ensure("versioning")
        return cache.entry_path(stage, engine.fingerprint(stage))

    def test_garbage_entry_quarantined(self, tmp_path):
        path = self._cold_entry(tmp_path, "svfg")
        with open(path, "w") as handle:
            handle.write("not json {")
        warm, cache = engine_with_cache(tmp_path, strict_cache=True)
        with pytest.raises(CheckpointError):
            warm.ensure("svfg")
        assert not os.path.exists(path)
        assert cache.quarantined
        assert glob.glob(path + "*.quarantined")

    def test_flipped_checksum_quarantined(self, tmp_path):
        path = self._cold_entry(tmp_path, "memssa")
        with open(path) as handle:
            doc = json.load(handle)
        doc["payload"]["digest"] = "0" * 64  # wrong digest, checksum stale
        with open(path, "w") as handle:
            json.dump(doc, handle)
        warm, cache = engine_with_cache(tmp_path, strict_cache=True)
        with pytest.raises(CheckpointError):
            warm.ensure("memssa")
        assert cache.quarantined

    def test_wrong_replay_digest_is_corrupt(self, tmp_path):
        # Re-seal a valid entry with a wrong digest: the lookup succeeds,
        # the rebuild runs, and the digest comparison rejects the entry.
        from repro.store.atomic import read_sealed_json, write_sealed_json

        path = self._cold_entry(tmp_path, "svfg")
        meta, _ = read_sealed_json(path, StageCache.KIND, STAGE_CACHE_SCHEMA)
        write_sealed_json(path, StageCache.KIND, STAGE_CACHE_SCHEMA, meta,
                          {"digest": "0" * 64})
        warm, cache = engine_with_cache(tmp_path, strict_cache=True)
        with pytest.raises(CheckpointError) as excinfo:
            warm.ensure("svfg")
        assert excinfo.value.reason == "corrupt"
        assert cache.quarantined
        assert not os.path.exists(path)

    def test_quarantined_entry_never_loaded_twice(self, tmp_path):
        path = self._cold_entry(tmp_path, "svfg")
        with open(path, "w") as handle:
            handle.write("garbage")
        broken, _ = engine_with_cache(tmp_path, strict_cache=True)
        with pytest.raises(CheckpointError):
            broken.ensure("svfg")
        # The bad entry is gone, so the next run is a clean miss+rebuild.
        recovered, cache = engine_with_cache(tmp_path)
        recovered.ensure("svfg")
        assert cache.hits >= 1  # upstream stages still hit
        assert os.path.exists(path)  # entry rewritten from the fresh build


class TestSelfHealing:
    """Default mode: corruption quarantines, recomputes, and re-stores —
    the run completes and the incident lands on the trace (DESIGN.md §12)."""

    def _cold_entry(self, tmp_path, stage):
        engine, cache = engine_with_cache(tmp_path)
        engine.ensure("versioning")
        return cache.entry_path(stage, engine.fingerprint(stage))

    def test_garbage_entry_recomputes_and_restores(self, tmp_path):
        path = self._cold_entry(tmp_path, "svfg")
        with open(path, "w") as handle:
            handle.write("not json {")
        warm, cache = engine_with_cache(tmp_path)
        artifact = warm.ensure("svfg")  # completes instead of raising
        assert artifact is not None
        assert cache.quarantined and glob.glob(path + "*.quarantined")
        assert os.path.exists(path)  # healed entry rewritten in place
        heals = warm.trace.heals
        assert any(h.get("action") == "recompute"
                   and h.get("point") == "stage_cache_read" for h in heals)
        record = warm.trace.record_for("svfg")
        assert record.cache == "miss" and record.outcome == "ok"

    def test_wrong_replay_digest_heals_to_rebuild(self, tmp_path):
        from repro.store.atomic import read_sealed_json, write_sealed_json

        path = self._cold_entry(tmp_path, "svfg")
        meta, _ = read_sealed_json(path, StageCache.KIND, STAGE_CACHE_SCHEMA)
        write_sealed_json(path, StageCache.KIND, STAGE_CACHE_SCHEMA, meta,
                          {"digest": "0" * 64})
        warm, cache = engine_with_cache(tmp_path)
        warm.ensure("svfg")
        assert cache.quarantined
        assert any(h.get("reason") == "digest-mismatch"
                   for h in warm.trace.heals)
        # The healed entry carries the *rebuild's* digest: a third run
        # is a clean replay hit again.
        third, cache3 = engine_with_cache(tmp_path)
        third.ensure("svfg")
        assert third.trace.record_for("svfg").cache == "replay"
        assert not third.trace.heals

    def test_healed_run_matches_clean_run(self, tmp_path):
        path = self._cold_entry(tmp_path, "svfg")
        clean, _ = engine_with_cache(tmp_path)
        clean_snapshot = clean.solve("vsfs").snapshot()
        with open(path, "w") as handle:
            handle.write("garbage")
        healed, _ = engine_with_cache(tmp_path)
        assert healed.solve("vsfs").snapshot() == clean_snapshot
