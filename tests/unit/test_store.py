"""Unit tests for the content-addressed result store."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline
from repro.store import ResultStore, ir_fingerprint, result_key

SRC = """
    int *g; int x; int y;
    int main(int c) { if (c) { g = &x; } else { g = &y; } return 0; }
"""

OTHER_SRC = "int *p; int z; int main() { p = &z; return 0; }"


@pytest.fixture
def module():
    return compile_c(SRC)


@pytest.fixture
def result(module):
    return AnalysisPipeline(module).vsfs()


class TestKeying:
    def test_key_is_deterministic(self, module):
        h = ir_fingerprint(module)
        assert result_key(h, "vsfs", True, True) == result_key(h, "vsfs", True, True)

    def test_key_separates_configs(self, module):
        h = ir_fingerprint(module)
        keys = {result_key(h, a, d, p)
                for a in ("vsfs", "sfs") for d in (0, 1) for p in (0, 1)}
        assert len(keys) == 8

    def test_fingerprint_tracks_ir_content(self):
        assert ir_fingerprint(compile_c(SRC)) == ir_fingerprint(compile_c(SRC))
        assert ir_fingerprint(compile_c(SRC)) != ir_fingerprint(compile_c(OTHER_SRC))


class TestResultStore:
    def test_miss_then_hit(self, tmp_path, module, result):
        store = ResultStore(str(tmp_path))
        assert store.get(module, "vsfs", True, True) is None
        assert store.misses == 1
        store.put(module, "vsfs", True, True, result)
        # A fresh compile of the same source addresses the same entry.
        fresh = compile_c(SRC)
        loaded = ResultStore(str(tmp_path)).get(fresh, "vsfs", True, True)
        assert loaded is not None
        assert loaded.snapshot() == result.snapshot()

    def test_config_isolation(self, tmp_path, module, result):
        store = ResultStore(str(tmp_path))
        store.put(module, "vsfs", True, True, result)
        assert store.get(module, "vsfs", False, True) is None
        assert store.get(module, "sfs", True, True) is None

    def test_edited_program_misses(self, tmp_path, module, result):
        store = ResultStore(str(tmp_path))
        store.put(module, "vsfs", True, True, result)
        assert store.get(compile_c(OTHER_SRC), "vsfs", True, True) is None

    def test_andersen_round_trip(self, tmp_path, module):
        ander = AnalysisPipeline(module).andersen()
        store = ResultStore(str(tmp_path))
        store.put(module, "ander", True, True, ander)
        loaded = store.get(compile_c(SRC), "ander", True, True)
        assert loaded is not None
        assert loaded._var_pts == ander._var_pts
        assert loaded._obj_pts == ander._obj_pts
        assert loaded.callgraph.num_edges() == ander.callgraph.num_edges()
        assert loaded.stats.processed_nodes == ander.stats.processed_nodes

    def test_corrupt_entry_quarantined(self, tmp_path, module, result):
        store = ResultStore(str(tmp_path))
        path = store.put(module, "vsfs", True, True, result)
        with open(path, "w") as handle:
            handle.write('{"half": ')
        with pytest.raises(CheckpointError) as exc:
            store.get(module, "vsfs", True, True)
        assert exc.value.reason == "corrupt"
        assert not os.path.exists(path)
        assert store.quarantined and os.path.exists(store.quarantined[0])
        # The quarantined entry no longer shadows the key: clean miss now.
        assert store.get(module, "vsfs", True, True) is None

    def test_tampered_payload_rejected(self, tmp_path, module, result):
        store = ResultStore(str(tmp_path))
        path = store.put(module, "vsfs", True, True, result)
        with open(path) as handle:
            document = json.load(handle)
        document["payload"]["pt"] = ["ff"] * len(document["payload"]["pt"])
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(CheckpointError) as exc:
            store.get(module, "vsfs", True, True)
        assert exc.value.reason == "corrupt"

    def test_renamed_entry_mismatch_detected(self, tmp_path, module, result):
        """An entry copied under another config's key is caught by meta."""
        store = ResultStore(str(tmp_path))
        src = store.put(module, "vsfs", True, True, result)
        h = ir_fingerprint(module)
        dst = store.entry_path(result_key(h, "vsfs", False, True))
        os.rename(src, dst)
        with pytest.raises(CheckpointError) as exc:
            store.get(module, "vsfs", False, True)
        assert exc.value.reason == "config-mismatch"

    def test_wrong_program_under_right_key(self, tmp_path, result):
        """An entry for program A moved to program B's key raises ir-mismatch."""
        module = result.module
        other = compile_c(OTHER_SRC)
        store = ResultStore(str(tmp_path))
        src = store.put(module, "vsfs", True, True, result)
        dst = store.entry_path(
            result_key(ir_fingerprint(other), "vsfs", True, True))
        os.rename(src, dst)
        with pytest.raises(CheckpointError) as exc:
            store.get(other, "vsfs", True, True)
        assert exc.value.reason == "ir-mismatch"
