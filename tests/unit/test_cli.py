"""Unit tests for the repro-wpa command-line driver."""

import pytest

from repro.cli import build_arg_parser, main

SOURCE = """
int *g; int x;
int main() { g = &x; int *a; a = g; return 0; }
"""

IR_SOURCE = """
func @main() {
entry:
  %p = alloca x
  %q = load %p
  ret
}
"""


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "prog.ir"
    path.write_text(IR_SOURCE)
    return str(path)


class TestArgParsing:
    def test_default_analysis_is_vsfs(self):
        args = build_arg_parser().parse_args(["prog.c"])
        assert args.analysis == "vsfs"

    @pytest.mark.parametrize("flag,name", [
        ("-ander", "ander"), ("-fspta", "sfs"), ("-vfspta", "vsfs"),
        ("-icfg-fspta", "icfg-fs"),
    ])
    def test_analysis_flags(self, flag, name):
        args = build_arg_parser().parse_args([flag, "prog.c"])
        assert args.analysis == name

    def test_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["-ander", "-fspta", "prog.c"])


class TestExecution:
    def test_vsfs_run(self, c_file, capsys):
        assert main(["-vfspta", c_file]) == 0
        out = capsys.readouterr().out
        assert "[vsfs]" in out and "versioning" in out

    def test_sfs_run(self, c_file, capsys):
        assert main(["-fspta", c_file]) == 0
        assert "[sfs]" in capsys.readouterr().out

    def test_ander_run(self, c_file, capsys):
        assert main(["-ander", c_file]) == 0
        assert "[ander]" in capsys.readouterr().out

    def test_icfg_run(self, c_file, capsys):
        assert main(["-icfg-fspta", c_file]) == 0
        assert "[icfg-fs]" in capsys.readouterr().out

    def test_stats_flag(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--stats"]) == 0
        assert "SVFG:" in capsys.readouterr().out

    def test_dump_pts(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--dump-pts"]) == 0
        assert "pt(" in capsys.readouterr().out

    def test_ir_input(self, ir_file, capsys):
        assert main(["-vfspta", "--ir", ir_file, "--dump-pts"]) == 0
        assert "pt(%p) = {x}" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["-vfspta", "/nonexistent/file.c"]) == 1
        assert "repro-wpa:" in capsys.readouterr().err


class TestProfileAndAblationFlags:
    @pytest.mark.parametrize("flag", ["-fspta", "-vfspta"])
    def test_profile_report(self, flag, c_file, capsys):
        assert main([flag, c_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "--- solver profile ---" in out
        assert "delta kernel: on, points-to repository: on" in out
        assert "unions applied:" in out
        assert "unique points-to sets:" in out and "union cache:" in out

    def test_profile_reports_disabled_features(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--profile",
                     "--no-delta", "--no-ptrepo"]) == 0
        out = capsys.readouterr().out
        assert "delta kernel: off, points-to repository: off" in out
        assert "unique points-to sets:" not in out  # repo off: nothing to report

    def test_profile_requires_staged_analysis(self, c_file, capsys):
        assert main(["-ander", c_file, "--profile"]) == 1
        assert "--profile needs a staged analysis" in capsys.readouterr().err

    def test_ablation_flags_preserve_results(self, c_file, capsys):
        """--no-delta/--no-ptrepo change the engine, never the answer."""
        assert main(["-vfspta", c_file, "--dump-pts"]) == 0
        baseline = capsys.readouterr().out
        assert main(["-vfspta", c_file, "--dump-pts",
                     "--no-delta", "--no-ptrepo"]) == 0
        ablated = capsys.readouterr().out
        pts = lambda text: [l for l in text.splitlines() if l.startswith("pt(")]
        assert pts(baseline) == pts(ablated) != []


class TestClientFlags:
    NULL_SRC = "int *g; int main() { return *g; }"

    def test_check_null(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text(self.NULL_SRC)
        assert main(["-vfspta", str(path), "--check-null"]) == 0
        out = capsys.readouterr().out
        assert "null-dereference warnings: 1" in out

    def test_check_null_requires_flow_sensitive(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text(self.NULL_SRC)
        assert main(["-ander", str(path), "--check-null"]) == 1

    def test_dead_stores(self, tmp_path, capsys):
        path = tmp_path / "dead.c"
        path.write_text("int *g; int x; int main() { g = &x; return 0; }")
        assert main(["-vfspta", str(path), "--dead-stores"]) == 0
        assert "dead stores: 1" in capsys.readouterr().out

    def test_dot_outputs(self, tmp_path, capsys, c_file):
        svfg_path = tmp_path / "svfg.dot"
        cg_path = tmp_path / "cg.dot"
        assert main(["-vfspta", c_file,
                     "--dot-svfg", str(svfg_path),
                     "--dot-callgraph", str(cg_path)]) == 0
        assert svfg_path.read_text().startswith('digraph "svfg"')
        assert cg_path.read_text().startswith('digraph "callgraph"')


class TestErrorHandlingAndExitCodes:
    """Exit-code contract: 1 I/O, 2 parse/IR, 3 analysis/budget."""

    def test_io_error_exits_1(self, capsys):
        assert main(["-vfspta", "/nonexistent/file.c"]) == 1
        assert "repro-wpa: error:" in capsys.readouterr().err

    def test_parse_error_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("int main( { this is not C")
        assert main(["-vfspta", str(path)]) == 2
        err = capsys.readouterr().err
        assert "repro-wpa: error:" in err

    def test_ir_error_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.ir"
        path.write_text("func @main() {\nentry:\n  %p = bogus_op\n}")
        assert main(["-vfspta", "--ir", str(path)]) == 2
        assert "repro-wpa: error:" in capsys.readouterr().err

    def test_budget_error_exits_3_without_fallback(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--max-steps", "0",
                     "--no-fallback"]) == 3
        assert "repro-wpa: error:" in capsys.readouterr().err


class TestBudgetAndReportFlags:
    def test_generous_budget_runs_normally(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--budget-seconds", "60",
                     "--max-steps", "100000"]) == 0
        captured = capsys.readouterr()
        assert "[vsfs]" in captured.out
        assert "warning" not in captured.err

    def test_zero_budget_degrades_to_andersen(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--budget-seconds", "0"]) == 0
        captured = capsys.readouterr()
        assert "degraded to andersen" in captured.err
        assert "[andersen] fallback result (degraded from vsfs)" in captured.out

    def test_report_flag_prints_run_report(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--report"]) == 0
        out = capsys.readouterr().out
        assert "--- run report: vsfs completed ---" in out
        assert "1. vsfs: completed" in out

    def test_report_shows_degradation_attempts(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--budget-seconds", "0",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "budget: wall 0s" in out
        assert "vsfs: budget-exceeded" in out
        assert "andersen: completed" in out

    def test_budget_mb_flag_parses(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--budget-mb", "512"]) == 0
        assert "[vsfs]" in capsys.readouterr().out

    def test_budgeted_run_same_answer_when_budget_suffices(self, c_file, capsys):
        assert main(["-vfspta", c_file, "--dump-pts"]) == 0
        baseline = capsys.readouterr().out
        assert main(["-vfspta", c_file, "--dump-pts",
                     "--budget-seconds", "60"]) == 0
        budgeted = capsys.readouterr().out
        pts = lambda text: [l for l in text.splitlines() if l.startswith("pt(")]
        assert pts(baseline) == pts(budgeted) != []


class TestResilienceFlags:
    def test_list_fault_points_needs_no_file(self, capsys):
        assert main(["--list-fault-points"]) == 0
        out = capsys.readouterr().out
        assert "--- fault points ---" in out
        for domain in ("[solver]", "[io]", "[parallel]"):
            assert domain in out
        assert "worker_heartbeat" in out and "stage_cache_read" in out

    def test_list_fault_points_flag_parses_with_file(self):
        args = build_arg_parser().parse_args(["--list-fault-points", "p.c"])
        assert args.list_fault_points

    def test_strict_io_flag_parses(self):
        args = build_arg_parser().parse_args(["--strict-io", "p.c"])
        assert args.strict_io
        assert not build_arg_parser().parse_args(["p.c"]).strict_io

    def test_chaos_list_subcommand(self, capsys):
        assert main(["chaos", "--list", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos schedule" in out
        assert "sfs/j1" in out and "vsfs/j2" in out

    def test_chaos_rejects_unknown_analysis(self, capsys):
        assert main(["chaos", "--analyses", "tensor", "--list"]) == 1
        assert "unknown analysis" in capsys.readouterr().err
