"""Unit tests for the DOT exporters."""

import pytest

from repro.core.versioning import ObjectVersioning
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline
from repro.viz.dot import callgraph_to_dot, cfg_to_dot, svfg_to_dot

SRC = """
int *g; int x;
void helper() { g = &x; }
int main(int c) {
    if (c) { helper(); }
    int *a; a = g;
    return 0;
}
"""


@pytest.fixture(scope="module")
def pipeline():
    return AnalysisPipeline(compile_c(SRC))


class TestCFGDot:
    def test_blocks_and_edges_present(self, pipeline):
        dot = cfg_to_dot(pipeline.module.functions["main"])
        assert dot.startswith('digraph "cfg_main"')
        assert '"entry"' in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_labels_escaped(self):
        # names with quotes must not break the DOT syntax
        module = compile_c('int g; int main() { g = 1; return g; }')
        dot = cfg_to_dot(module.functions["main"])
        assert dot.count('"') % 2 == 0


class TestCallGraphDot:
    def test_edges_rendered(self, pipeline):
        result = pipeline.vsfs()
        dot = callgraph_to_dot(result.callgraph)
        assert '"main" -> "helper"' in dot
        assert '"__module_init__" -> "main"' in dot


class TestSVFGDot:
    def test_nodes_and_indirect_edges(self, pipeline):
        dot = svfg_to_dot(pipeline.svfg())
        assert "color=blue" in dot          # indirect edges
        assert "peripheries=2" in dot       # store nodes double-lined

    def test_version_labels(self, pipeline):
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg, keep_all_versions=True).run()
        dot = svfg_to_dot(svfg, versioning=versioning)
        assert "k" in dot and "->k" in dot  # κ-annotated edge labels

    def test_function_filter(self, pipeline):
        dot = svfg_to_dot(pipeline.svfg(), only_function="helper")
        assert "helper" in dot
        assert "inst l" in dot

    def test_direct_edges_toggle(self, pipeline):
        with_direct = svfg_to_dot(pipeline.svfg(), include_direct=True)
        without = svfg_to_dot(pipeline.svfg(), include_direct=False)
        assert with_direct.count("->") > without.count("->")
