"""Unit tests for the function-granular incremental spine (DESIGN.md §14).

Per-function fingerprints must be *sibling-stable* (editing one function
never perturbs another's hash), the stable entity keys must survive a
sibling edit, the dirty closure must grow an edit into exactly the
regions whose values can change, and the stored-solution layer must
quarantine anything minted under an older fingerprint scheme.
"""

import json

import pytest

from repro.errors import CheckpointError
from repro.incremental import (
    DependencyMap,
    IncrementalStore,
    build_payload,
    node_dirty_closure,
    node_flow_graph,
    plan_warm,
    region_digests,
)
from repro.ir.fingerprint import (
    FINGERPRINT_SCHEME,
    diff_functions,
    module_fingerprint,
    module_function_fingerprints,
    node_keys,
    object_keys,
    variable_keys,
)
from repro.pipeline import AnalysisPipeline
from repro.solvers.sfs import SFSAnalysis

BASE = """
int *g; int x; int y;
void set(int *p) { g = p; }
int probe() { int *a; a = g; return 0; }
int main() { set(&x); probe(); set(&y); return 0; }
"""

#: Same program with one function (probe) edited.
EDITED = """
int *g; int x; int y;
void set(int *p) { g = p; }
int probe() { int *a; a = g; *a = 1; return 0; }
int main() { set(&x); probe(); set(&y); return 0; }
"""

#: Same program, whitespace and comments only.
RESPACED = """
int *g;   int x;  int y;

/* a comment the fingerprint must not see */
void set(int *p) {
    g = p;   // trailing comment
}
int probe() { int *a; a = g; return 0; }
int main() { set(&x); probe(); set(&y); return 0; }
"""


def module_of(src):
    return AnalysisPipeline.from_source(src).module


class TestFingerprints:
    def test_sibling_edit_leaves_other_hashes_alone(self):
        old = module_function_fingerprints(module_of(BASE))
        new = module_function_fingerprints(module_of(EDITED))
        assert set(old) == set(new)
        for name in old:
            if name == "probe":
                assert old[name] != new[name]
            else:
                assert old[name] == new[name], name

    def test_whitespace_and_comments_do_not_change_hashes(self):
        assert (module_function_fingerprints(module_of(BASE))
                == module_function_fingerprints(module_of(RESPACED)))
        assert (module_fingerprint(module_of(BASE))
                == module_fingerprint(module_of(RESPACED)))

    def test_module_fingerprint_sees_the_edit(self):
        assert (module_fingerprint(module_of(BASE))
                != module_fingerprint(module_of(EDITED)))

    def test_diff_functions_classifies(self):
        old = {"f": "1", "g": "2", "h": "3"}
        new = {"f": "1", "g": "9", "k": "4"}
        diff = diff_functions(old, new)
        assert diff == {"changed": ["g"], "added": ["k"], "deleted": ["h"]}


class TestStableKeys:
    def test_variable_keys_of_clean_functions_survive_sibling_edit(self):
        old_mod, new_mod = module_of(BASE), module_of(EDITED)
        old = {key: vid for vid, key in enumerate(variable_keys(old_mod))}
        new = {key: vid for vid, key in enumerate(variable_keys(new_mod))}
        clean = [key for key in old
                 if key.startswith(("g:", "v:set:", "v:main:"))]
        assert clean
        for key in clean:
            assert key in new, key

    def test_object_keys_unique_and_stable(self):
        old_keys = object_keys(module_of(BASE))
        new_keys = object_keys(module_of(EDITED))
        assert len(set(old_keys)) == len(old_keys)
        assert len(set(new_keys)) == len(new_keys)
        # Every old object still exists under the same name after the
        # sibling edit (the edit allocates nothing new).
        assert set(old_keys) <= set(new_keys)

    def test_node_keys_unique(self):
        svfg = AnalysisPipeline.from_source(BASE).svfg()
        keys = node_keys(svfg)
        assert len(keys) == len(svfg.nodes)
        assert len(set(keys)) == len(keys)

    def test_node_keys_of_clean_functions_survive_sibling_edit(self):
        old_svfg = AnalysisPipeline.from_source(BASE).svfg()
        new_svfg = AnalysisPipeline.from_source(EDITED).svfg()
        old = set(node_keys(old_svfg))
        new = set(node_keys(new_svfg))
        clean_old = {key for key in old
                     if key.split("#", 1)[0] in ("set", "main")}
        assert clean_old
        assert clean_old <= new


class TestDirtyClosure:
    def test_function_closure_is_forward_reachability(self):
        dep = DependencyMap({"a": {"b"}, "b": {"c"}, "c": set(),
                             "d": set()})
        assert dep.dirty_closure(["a"]) == {"a", "b", "c"}
        assert dep.dirty_closure(["c"]) == {"c"}
        assert dep.dirty_closure(["a", "d"]) == {"a", "b", "c", "d"}

    def test_node_closure_covers_seed_functions(self):
        pipeline = AnalysisPipeline.from_source(BASE)
        svfg = pipeline.svfg()
        reached, dirty = node_dirty_closure(svfg, {"probe"},
                                            pipeline.andersen())
        assert "probe" in dirty
        regions = svfg.nodes_by_function()
        assert set(regions["probe"]) <= reached

    def test_extra_seed_nodes_grow_the_closure(self):
        pipeline = AnalysisPipeline.from_source(BASE)
        svfg = pipeline.svfg()
        base_reached, _ = node_dirty_closure(svfg, set(),
                                             pipeline.andersen())
        seeded, _ = node_dirty_closure(svfg, set(), pipeline.andersen(),
                                       seed_nodes=[0])
        assert base_reached == set()
        assert 0 in seeded


class TestRegionDigests:
    def test_clean_input_regions_keep_digests(self):
        old_p = AnalysisPipeline.from_source(BASE)
        new_p = AnalysisPipeline.from_source(EDITED)
        old = region_digests(old_p.svfg(), old_p.modref(), old_p.andersen())
        new = region_digests(new_p.svfg(), new_p.modref(), new_p.andersen())
        assert old["set"] == new["set"]
        assert old["probe"] != new["probe"]

    def test_digest_sees_pointer_behaviour_of_callees(self):
        # An edit that changes what set() may store must flip the digest
        # of regions reading g, even though their own code is unchanged.
        base = BASE.replace("int y;", "int y; int z;")
        changed = base.replace("{ g = p; }", "{ g = p; g = &z; }")
        old_p = AnalysisPipeline.from_source(base)
        new_p = AnalysisPipeline.from_source(changed)
        old = region_digests(old_p.svfg(), old_p.modref(), old_p.andersen())
        new = region_digests(new_p.svfg(), new_p.modref(), new_p.andersen())
        assert old["probe"] != new["probe"]


def _solve_payload(src, analysis="sfs", delta=True, ptrepo=True):
    pipeline = AnalysisPipeline.from_source(src)
    svfg = pipeline.svfg()
    solver = SFSAnalysis(svfg.copy(), delta=delta, ptrepo=ptrepo)
    result = solver.run()
    node_in, node_out = solver.export_node_memory()
    return build_payload(svfg, pipeline.modref(), result, node_in,
                         node_out, node_flow_graph(solver.svfg),
                         analysis, delta, ptrepo, pipeline.andersen())


class TestIncrementalStore:
    def test_payload_is_json_clean(self):
        json.dumps(_solve_payload(BASE))

    def test_memory_roundtrip(self):
        store = IncrementalStore()
        payload = _solve_payload(BASE)
        assert store.save(payload) is None
        assert store.load("sfs", True, True) is payload
        assert store.load("vsfs", True, True) is None

    def test_disk_roundtrip(self, tmp_path):
        store = IncrementalStore(str(tmp_path))
        payload = _solve_payload(BASE)
        path = store.save(payload)
        assert path is not None
        loaded = IncrementalStore(str(tmp_path)).load("sfs", True, True)
        assert loaded == payload

    def test_stale_scheme_quarantines(self, tmp_path):
        store = IncrementalStore(str(tmp_path))
        payload = _solve_payload(BASE)
        payload["fp_scheme"] = FINGERPRINT_SCHEME - 1  # pre-refactor entry
        path = store.save(payload)
        with pytest.raises(CheckpointError) as err:
            store.load("sfs", True, True)
        assert err.value.reason == "schema"
        import os
        assert not os.path.exists(path)
        # The quarantined slot reads as a clean miss afterwards.
        assert store.load("sfs", True, True) is None


class TestPlanFallbacks:
    def test_scheme_mismatch_falls_back(self):
        payload = _solve_payload(BASE)
        payload["fp_scheme"] = FINGERPRINT_SCHEME - 1
        pipeline = AnalysisPipeline.from_source(EDITED)
        plan = plan_warm(payload, pipeline.svfg(), pipeline.modref(),
                         "sfs", True, True, pipeline.andersen())
        assert not plan.usable
        assert plan.fallback_reason == "scheme"
        assert plan.stats.fallback_reason == "scheme"

    def test_config_mismatch_falls_back(self):
        payload = _solve_payload(BASE)
        pipeline = AnalysisPipeline.from_source(EDITED)
        plan = plan_warm(payload, pipeline.svfg(), pipeline.modref(),
                         "vsfs", True, True, pipeline.andersen())
        assert plan.fallback_reason == "config"
        plan = plan_warm(payload, pipeline.svfg(), pipeline.modref(),
                         "sfs", False, True, pipeline.andersen())
        assert plan.fallback_reason == "config"

    def test_usable_plan_marks_edited_function_dirty(self):
        payload = _solve_payload(BASE)
        pipeline = AnalysisPipeline.from_source(EDITED)
        plan = plan_warm(payload, pipeline.svfg(), pipeline.modref(),
                         "sfs", True, True, pipeline.andersen())
        assert plan.usable
        assert "probe" in plan.dirty_functions
        assert "set" not in plan.dirty_functions
        stats = plan.stats
        assert stats.regions_total == stats.regions_reused + \
            stats.regions_recomputed
        assert stats.regions_reused > 0
