"""Unit tests for the daemon's building blocks: protocol, admission,
circuit breakers, and the supervised worker pool."""

import json

import pytest

from repro.errors import (
    DeadlineExceeded,
    InjectedFault,
    InvalidRequest,
    ServiceOverloaded,
)
from repro.runtime.faults import FaultPlan
from repro.service.admission import AdmissionQueue, TenantPolicy
from repro.service.breaker import BreakerBoard, CircuitBreaker
from repro.service.protocol import (
    OPS,
    Request,
    decode_request,
    error_response,
)
from repro.service.workers import Ticket, WorkerPool


class TestProtocol:
    def test_decode_minimal_analyze(self):
        request = decode_request('{"op": "analyze", "program": "int x;"}')
        assert request.op == "analyze"
        assert request.analysis == "vsfs"
        assert request.tenant == "default"
        assert request.deadline_s is None

    def test_decode_dict_input(self):
        request = decode_request({"op": "ping"})
        assert request.op == "ping"

    @pytest.mark.parametrize("raw", [
        "not json at all",
        "[1, 2, 3]",
        '{"op": "frobnicate"}',
        '{"op": "analyze"}',  # query op without a program
        '{"op": "analyze", "program": "int x;", "deadline_s": -1}',
        '{"op": "analyze", "program": "int x;", "deadline_s": "soon"}',
        '{"op": "analyze", "program": "int x;", "language": "cobol"}',
        '{"op": "analyze", "program": "int x;", "analysis": "magic"}',
        '{"op": "alias", "program": "int x;"}',  # missing params.a/b
        '{"op": "slice", "program": "int x;"}',  # missing params.var
        '{"op": "slice", "program": "int x;", '
        '"params": {"var": "v", "direction": "sideways"}}',
        '{"op": "analyze", "program": "int x;", "params": [1, 2]}',
    ])
    def test_decode_is_total(self, raw):
        """Every malformed input is a typed InvalidRequest, never a
        KeyError/TypeError/json traceback."""
        with pytest.raises(InvalidRequest):
            decode_request(raw)

    def test_decode_fault_point_fires(self):
        plan = FaultPlan(point="request_decode")
        with pytest.raises(InjectedFault):
            decode_request('{"op": "ping"}', faults=plan)
        assert plan.fired
        # Disarmed (once=True): the retry decodes clean.
        assert decode_request('{"op": "ping"}', faults=plan).op == "ping"

    def test_error_response_typed(self):
        response = error_response("r1", "analyze",
                                  ServiceOverloaded("full",
                                                    retry_after_s=0.75))
        payload = response.to_dict()
        assert payload["ok"] is False
        assert payload["error"]["type"] == "ServiceOverloaded"
        assert payload["error"]["retry_after_s"] == 0.75
        assert payload["error"]["draining"] is False

    def test_error_response_untyped_is_internal(self):
        response = error_response("r2", "alias", ValueError("boom"))
        payload = response.to_dict()
        assert payload["error"]["type"] == "InternalError"
        assert payload["error"]["exception"] == "ValueError"

    def test_error_response_deadline_phase(self):
        response = error_response("r3", "slice",
                                  DeadlineExceeded("late", deadline_s=2.0,
                                                   phase="queue"))
        assert response.to_dict()["error"]["phase"] == "queue"

    def test_response_encode_is_json_line(self):
        request = decode_request('{"op": "ping", "id": "a"}')
        line = error_response(request.id, request.op,
                              InvalidRequest("nope")).encode()
        assert "\n" not in line
        assert json.loads(line)["id"] == "a"

    def test_ops_table(self):
        assert "analyze" in OPS and "drain" in OPS


class TestTenantPolicy:
    def test_clamp_deadline(self):
        policy = TenantPolicy(max_wall_s=5.0)
        assert policy.clamp_deadline(None) == 5.0
        assert policy.clamp_deadline(60.0) == 5.0
        assert policy.clamp_deadline(2.0) == 2.0
        assert TenantPolicy().clamp_deadline(None) is None


class TestAdmissionQueue:
    def _ticket(self, tenant="default"):
        return Ticket(Request(op="analyze", tenant=tenant, program="int x;"))

    def test_admit_and_get(self):
        queue = AdmissionQueue(depth=4)
        ticket = self._ticket()
        queue.admit(ticket)
        assert ticket.request.admitted_at is not None
        assert queue.get(timeout=0.1) is ticket
        assert queue.get(timeout=0.01) is None

    def test_depth_bound_sheds_with_pressure_hint(self):
        queue = AdmissionQueue(depth=2, retry_after_s=0.2)
        queue.admit(self._ticket())
        queue.admit(self._ticket())
        with pytest.raises(ServiceOverloaded) as excinfo:
            queue.admit(self._ticket())
        assert excinfo.value.retry_after_s > 0.2  # scaled by pressure
        assert queue.stats()["shed_overload"] == 1

    def test_tenant_quota(self):
        queue = AdmissionQueue(depth=16,
                               tenants={"chatty": TenantPolicy(max_queued=1)})
        queue.admit(self._ticket("chatty"))
        with pytest.raises(ServiceOverloaded):
            queue.admit(self._ticket("chatty"))
        # Other tenants are unaffected by the chatty one's quota.
        queue.admit(self._ticket("quiet"))
        assert queue.stats()["shed_tenant"] == 1

    def test_quota_released_on_get(self):
        queue = AdmissionQueue(depth=16,
                               tenants={"t": TenantPolicy(max_queued=1)})
        queue.admit(self._ticket("t"))
        queue.get(timeout=0.1)
        queue.admit(self._ticket("t"))  # slot freed

    def test_drain_evicts_and_closes(self):
        queue = AdmissionQueue(depth=8)
        first, second = self._ticket(), self._ticket()
        queue.admit(first)
        queue.admit(second)
        evicted = queue.drain()
        assert evicted == [first, second]
        assert len(queue) == 0
        with pytest.raises(ServiceOverloaded) as excinfo:
            queue.admit(self._ticket())
        assert excinfo.value.draining is True
        assert queue.get(timeout=0.01) is None  # drained + empty

    def test_injected_admission_fault_is_typed_shed(self):
        plan = FaultPlan(point="queue_admit")
        queue = AdmissionQueue(depth=8, faults=plan)
        with pytest.raises(ServiceOverloaded):
            queue.admit(self._ticket())
        assert plan.fired
        assert queue.stats()["shed_injected"] == 1
        queue.admit(self._ticket())  # disarmed plan admits clean


class TestCircuitBreaker:
    def test_closed_passes_requested_analysis(self):
        breaker = CircuitBreaker(threshold=2)
        assert breaker.plan("vsfs", now=0.0) == ("vsfs", False)

    def test_threshold_trips_and_pins_next_rung_down(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0)
        breaker.record(False, now=0.0)
        assert breaker.state == "closed"
        breaker.record(False, now=1.0)
        assert breaker.state == "open"
        assert breaker.plan("vsfs", now=2.0) == ("sfs", False)
        assert breaker.plan("sfs", now=2.0) == ("ander", False)
        assert breaker.plan("ander", now=2.0) == ("ander", False)  # floor

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record(False, now=0.0)
        breaker.record(True, now=1.0)
        breaker.record(False, now=2.0)
        assert breaker.state == "closed"

    def test_half_open_probe_restores_full_precision(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0)
        breaker.record(False, now=0.0)
        assert breaker.state == "open"
        # Inside the cooldown: still pinned.
        assert breaker.plan("vsfs", now=2.0) == ("sfs", False)
        # Cooldown passed: exactly one probe at full precision...
        assert breaker.plan("vsfs", now=6.0) == ("vsfs", True)
        # ...while a concurrent request stays pinned.
        assert breaker.plan("vsfs", now=6.0) == ("sfs", False)
        breaker.record(True, probe=True, now=6.5)
        assert breaker.state == "closed"
        assert breaker.plan("vsfs", now=7.0) == ("vsfs", False)

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0)
        breaker.record(False, now=0.0)
        assert breaker.plan("vsfs", now=6.0)[1] is True  # the probe
        breaker.record(False, probe=True, now=6.0)
        assert breaker.state == "open"
        assert breaker.plan("vsfs", now=8.0) == ("sfs", False)  # cooling
        assert breaker.plan("vsfs", now=12.0)[1] is True  # next probe

    def test_pinned_failures_do_not_move_the_state_machine(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=100.0)
        breaker.record(False, now=0.0)
        trips = breaker.trips
        breaker.record(False, now=1.0)  # a pinned execution failing
        assert breaker.trips == trips

    def test_board_keys_by_tenant_and_program(self):
        board = BreakerBoard(threshold=1, cooldown_s=100.0)
        effective, probe, breaker = board.plan("t1", "prog-a", "vsfs")
        assert (effective, probe) == ("vsfs", False)
        board.record(breaker, False)
        assert board.plan("t1", "prog-a", "vsfs")[0] == "sfs"
        # Same program, different tenant: independent breaker.
        assert board.plan("t2", "prog-a", "vsfs")[0] == "vsfs"
        assert board.stats()["open"] == 1


class TestWorkerPool:
    def _pool(self, handler, queue=None, **kwargs):
        queue = queue or AdmissionQueue(depth=16)
        pool = WorkerPool(queue, handler, size=2, **kwargs)
        return queue, pool

    def test_executes_and_resolves(self):
        from repro.service.protocol import Response

        def handler(ticket):
            return Response(id=ticket.request.id, op=ticket.request.op,
                            result={"echo": True})

        queue, pool = self._pool(handler)
        pool.start()
        try:
            ticket = Ticket(Request(op="analyze", id="t1", program="x"))
            queue.admit(ticket)
            response = ticket.wait(timeout=5.0)
            assert response is not None and response.ok
            assert response.result == {"echo": True}
        finally:
            queue.drain()
            pool.stop(timeout=2.0)

    def test_untyped_crash_becomes_internal_error_and_charges(self):
        def handler(ticket):
            raise RuntimeError("handler bug")

        queue, pool = self._pool(handler)
        pool.start()
        try:
            ticket = Ticket(Request(op="analyze", id="t2", program="x"))
            queue.admit(ticket)
            response = ticket.wait(timeout=5.0)
            assert response is not None and not response.ok
            assert response.error["type"] == "InternalError"
            assert pool.stats()["crashes"] == 1
        finally:
            queue.drain()
            pool.stop(timeout=2.0)

    def test_injected_exec_fault_retries_and_heals(self):
        from repro.service.protocol import Response

        def handler(ticket):
            return Response(id=ticket.request.id, op=ticket.request.op,
                            result={"ok": 1})

        plan = FaultPlan(point="worker_exec")  # once: retry runs clean
        queue, pool = self._pool(handler, faults=plan)
        pool.start()
        try:
            ticket = Ticket(Request(op="analyze", id="t3", program="x"))
            queue.admit(ticket)
            response = ticket.wait(timeout=5.0)
            assert response is not None and response.ok
            assert response.retries == 1  # healed on the revived slot
            assert plan.fired
        finally:
            queue.drain()
            pool.stop(timeout=2.0)

    def test_repeat_exec_fault_exhausts_into_typed_failure(self):
        from repro.service.protocol import Response

        def handler(ticket):
            return Response(id=ticket.request.id, op=ticket.request.op)

        plan = FaultPlan(point="worker_exec", probability=1.0, once=False)
        queue, pool = self._pool(handler, faults=plan)
        pool.start()
        try:
            ticket = Ticket(Request(op="analyze", id="t4", program="x"))
            queue.admit(ticket)
            response = ticket.wait(timeout=5.0)
            assert response is not None and not response.ok
            assert response.error["type"] == "InjectedFault"
        finally:
            queue.drain()
            pool.stop(timeout=2.0)

    def test_hung_worker_is_abandoned_and_slot_revived(self):
        import threading

        from repro.service.protocol import Response

        release = threading.Event()

        def handler(ticket):
            if ticket.request.id == "slow":
                release.wait(20.0)  # simulate a stuck solve
            return Response(id=ticket.request.id, op=ticket.request.op)

        queue, pool = self._pool(handler, hang_grace_s=0.2)
        pool.start()
        try:
            slow = Ticket(Request(op="analyze", id="slow", program="x",
                                  deadline_s=0.3))
            queue.admit(slow)
            response = slow.wait(timeout=10.0)
            assert response is not None and not response.ok
            assert response.error["type"] == "DeadlineExceeded"
            assert response.error["phase"] == "execute"
            assert pool.stats()["hangs"] == 1
            # The replacement slot still serves new work.
            fresh = Ticket(Request(op="analyze", id="fresh", program="x"))
            queue.admit(fresh)
            assert fresh.wait(timeout=5.0).ok
        finally:
            release.set()
            queue.drain()
            pool.stop(timeout=2.0)

    def test_ticket_resolution_is_first_wins(self):
        from repro.service.protocol import Response

        ticket = Ticket(Request(op="ping"))
        assert ticket.resolve(Response(id="a")) is True
        assert ticket.resolve(Response(id="b")) is False
        assert ticket.wait(timeout=0.1).id == "a"
