"""Cross-validation of the three meld-labelling strategies.

``scc`` and ``fixpoint`` must agree on raw label masks; ``hashcons``
(interned labels, the paper's future-work representation) numbers versions
differently but must induce the *same partition* of (node, side) pairs per
object and the same amount of propagation work.
"""

from typing import Dict, FrozenSet, Tuple

import pytest

from repro.core.versioning import ObjectVersioning
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline

PROGRAMS = {
    "straightline": """
        int *g; int x;
        int main() { g = &x; int *a; a = g; int *b; b = g; return 0; }
    """,
    "joins": """
        int *g; int x; int y;
        int main(int c) {
            if (c) { g = &x; } else { g = &y; }
            int *a; a = g;
            if (c) { g = &x; }
            int *b; b = g;
            return 0;
        }
    """,
    "interprocedural": """
        struct node { int v; struct node *f0; };
        struct node *g;
        struct node *cb(struct node *a, struct node *b) { g = a; return b; }
        fnptr h;
        int main(int c) {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            h = cb;
            struct node *r = h(n, g);
            while (c) { r = cb(r, n); c = c - 1; }
            return 0;
        }
    """,
}


def partition(versioning: ObjectVersioning) -> Dict[int, FrozenSet[FrozenSet[Tuple[int, str]]]]:
    """Per object: the partition of (node, side) pairs by version."""
    svfg = versioning.svfg
    num_nodes = len(svfg.nodes)
    oids = set()
    for node_id in range(num_nodes):
        for oid in svfg.ind_succs[node_id]:
            oids.add(oid)
        for __, oid in svfg.ind_preds[node_id]:
            oids.add(oid)
    result: Dict[int, FrozenSet] = {}
    for oid in oids:
        classes: Dict[int, set] = {}
        for node_id in range(num_nodes):
            cv = versioning.consumed_version(node_id, oid)
            yv = versioning.yielded_version(node_id, oid)
            classes.setdefault(cv, set()).add((node_id, "C"))
            classes.setdefault(yv, set()).add((node_id, "Y"))
        result[oid] = frozenset(frozenset(group) for group in classes.values())
    return result


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("strategy", ["fixpoint", "hashcons"])
def test_strategy_partition_matches_scc(name, strategy):
    pipeline = AnalysisPipeline(compile_c(PROGRAMS[name]))
    base = ObjectVersioning(pipeline.fresh_svfg(), keep_all_versions=True).run("scc")
    other = ObjectVersioning(pipeline.fresh_svfg(), keep_all_versions=True).run(strategy)
    assert partition(base) == partition(other)
    assert base.num_constraints() == other.num_constraints()


@pytest.mark.parametrize("strategy", ["scc", "fixpoint", "hashcons"])
def test_vsfs_correct_under_every_strategy(strategy):
    from repro.core.vsfs import VSFSAnalysis

    pipeline = AnalysisPipeline(compile_c(PROGRAMS["interprocedural"]))
    sfs_snapshot = pipeline.sfs().snapshot()
    svfg = pipeline.fresh_svfg()
    versioning = ObjectVersioning(svfg).run(strategy)
    result = VSFSAnalysis(svfg, versioning=versioning).run()
    assert result.snapshot() == sfs_snapshot


def test_hashcons_on_generated_workload():
    from repro.bench.workloads import WorkloadConfig, generate_program

    module = generate_program(WorkloadConfig(seed=77, num_functions=6,
                                             stmts_per_function=8,
                                             indirect_call_rate=0.2))
    pipeline = AnalysisPipeline(module)
    base = ObjectVersioning(pipeline.fresh_svfg(), keep_all_versions=True).run("scc")
    hashcons = ObjectVersioning(pipeline.fresh_svfg(), keep_all_versions=True).run("hashcons")
    assert partition(base) == partition(hashcons)
