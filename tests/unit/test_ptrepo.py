"""Unit tests for the points-to repository and the delta worklist."""

import pytest

from repro.datastructs.ptrepo import EMPTY_ID, PTRepo
from repro.datastructs.worklist import DeltaWorkList


class TestPTRepo:
    def test_empty_mask_is_id_zero(self):
        repo = PTRepo()
        assert repo.intern(0) == EMPTY_ID == 0
        assert repo.mask(EMPTY_ID) == 0
        # Entry truthiness must match mask truthiness (solvers rely on it).
        assert not repo.intern(0) and repo.intern(0b1)

    def test_intern_dedups(self):
        repo = PTRepo()
        a = repo.intern(0b1010)
        b = repo.intern(0b1010)
        c = repo.intern(0b0101)
        assert a == b != c
        assert repo.mask(a) == 0b1010 and repo.mask(c) == 0b0101
        assert len(repo) == 2  # distinct non-empty sets

    def test_get_does_not_allocate(self):
        repo = PTRepo()
        assert repo.get(0b11) is None
        ident = repo.intern(0b11)
        assert repo.get(0b11) == ident
        assert len(repo) == 1

    def test_union_is_memoised(self):
        repo = PTRepo()
        a = repo.intern(0b0011)
        b = repo.intern(0b0110)
        u1 = repo.union(a, b)
        u2 = repo.union(b, a)  # order-normalised key: same cache entry
        assert u1 == u2
        assert repo.mask(u1) == 0b0111
        assert repo.union_calls == 2
        assert repo.union_hits == 1 and repo.union_misses == 1

    def test_union_short_circuits(self):
        repo = PTRepo()
        a = repo.intern(0b1)
        assert repo.union(a, a) == a
        assert repo.union(a, EMPTY_ID) == a
        assert repo.union(EMPTY_ID, a) == a
        assert repo.union_calls == 0  # trivial unions are not counted

    def test_union_mask_merges_raw_bits(self):
        repo = PTRepo()
        a = repo.intern(0b001)
        merged = repo.union_mask(a, 0b110)
        assert repo.mask(merged) == 0b111
        assert repo.union_mask(merged, 0) == merged

    def test_hit_rate_and_total_bits(self):
        repo = PTRepo()
        a = repo.intern(0b0011)
        b = repo.intern(0b1100)
        repo.union(a, b)
        repo.union(a, b)
        assert repo.hit_rate() == pytest.approx(0.5)
        assert repo.total_bits() == 2 + 2 + 4
        assert repo.total_bits([a, a, b]) == 2 + 2 + 2


class TestDeltaWorkList:
    def test_push_delta_accumulates_dirty_bits(self):
        wl = DeltaWorkList()
        assert wl.push_delta(7, oid=1, delta=0b01)
        assert not wl.push_delta(7, oid=1, delta=0b10)  # already queued
        assert wl.push_delta(7, oid=2, delta=0b100) is False
        assert len(wl) == 1
        node, dirty = wl.pop_with_dirty()
        assert node == 7
        assert dirty == {1: 0b11, 2: 0b100}

    def test_plain_push_means_full_revisit(self):
        wl = DeltaWorkList()
        wl.push(3)
        node, dirty = wl.pop_with_dirty()
        assert node == 3 and dirty is None

    def test_full_push_subsumes_deltas(self):
        wl = DeltaWorkList()
        wl.push_delta(5, oid=0, delta=0b1)
        wl.push(5)  # upgrade to full revisit
        wl.push_delta(5, oid=1, delta=0b10)  # ignored: full pending
        assert wl.pop_with_dirty() == (5, None)

    def test_take_dirty_matches_pop(self):
        wl = DeltaWorkList()
        wl.push_delta(1, oid=4, delta=0b1)
        wl.push(2)
        assert wl.pop() == 1
        assert wl.take_dirty(1) == {4: 0b1}
        assert wl.pop() == 2
        assert wl.take_dirty(2) is None

    def test_fifo_order_and_dedup(self):
        wl = DeltaWorkList()
        wl.push_delta(1, 0, 0b1)
        wl.push(2)
        wl.push_delta(1, 0, 0b10)
        order = []
        while wl:
            order.append(wl.pop_with_dirty())
        assert order == [(1, {0: 0b11}), (2, None)]
