"""Unit tests: atomic writes, sealed envelopes, and the Checkpointer."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    CheckpointConfig,
    Checkpointer,
    checkpoint_path,
    find_checkpoint,
    load_checkpoint,
)
from repro.store.atomic import (
    atomic_write_json,
    atomic_write_text,
    read_sealed_json,
    write_sealed_json,
)


class FakeSolver:
    """Stands in for a real solver: snapshot_state is all save() needs."""

    def __init__(self, payload):
        self.payload = payload

    def snapshot_state(self):
        return self.payload


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello")
        with open(path) as handle:
            assert handle.read() == "hello"

    def test_replaces_existing_file(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        with open(path) as handle:
            assert handle.read() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_json_round_trips(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": [1, 2], "b": None})
        with open(path) as handle:
            assert json.load(handle) == {"a": [1, 2], "b": None}


class TestSealedEnvelope:
    def _write(self, tmp_path, payload=None, meta=None):
        path = str(tmp_path / "doc.json")
        write_sealed_json(path, "testkind", 1, meta or {"m": 1},
                          payload if payload is not None else {"p": [1, 2]})
        return path

    def test_round_trip(self, tmp_path):
        path = self._write(tmp_path)
        meta, payload = read_sealed_json(path, "testkind", 1)
        assert meta == {"m": 1}
        assert payload == {"p": [1, 2]}

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError) as exc:
            read_sealed_json(str(tmp_path / "absent.json"), "testkind", 1)
        assert exc.value.reason == "missing"

    def test_truncated_file(self, tmp_path):
        path = self._write(tmp_path)
        with open(path) as handle:
            raw = handle.read()
        with open(path, "w") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError) as exc:
            read_sealed_json(path, "testkind", 1)
        assert exc.value.reason == "corrupt"

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        path = self._write(tmp_path)
        with open(path) as handle:
            document = json.load(handle)
        document["payload"]["p"][0] = 999  # bit-flip without breaking JSON
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(CheckpointError) as exc:
            read_sealed_json(path, "testkind", 1)
        assert exc.value.reason == "corrupt"

    def test_not_json_at_all(self, tmp_path):
        path = str(tmp_path / "doc.json")
        with open(path, "wb") as handle:
            handle.write(b"\x00\xffgarbage")
        with pytest.raises(CheckpointError) as exc:
            read_sealed_json(path, "testkind", 1)
        assert exc.value.reason == "corrupt"

    def test_wrong_kind(self, tmp_path):
        path = self._write(tmp_path)
        with pytest.raises(CheckpointError) as exc:
            read_sealed_json(path, "otherkind", 1)
        assert exc.value.reason == "kind"

    def test_wrong_schema(self, tmp_path):
        path = self._write(tmp_path)
        with pytest.raises(CheckpointError) as exc:
            read_sealed_json(path, "testkind", 2)
        assert exc.value.reason == "schema"


class TestCheckpointer:
    CONFIG = dict(ir_hash="abc123", analysis="vsfs", delta=True, ptrepo=True)

    def _checkpointer(self, tmp_path, **overrides):
        config = CheckpointConfig(str(tmp_path), every_steps=10)
        kwargs = dict(self.CONFIG)
        kwargs.update(overrides)
        return Checkpointer(config, **kwargs)

    def test_save_load_round_trip(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        path = ck.save(FakeSolver({"state": [1, 2, 3]}), step=42)
        meta, payload = load_checkpoint(path, **self.CONFIG)
        assert meta["step"] == 42
        assert payload == {"state": [1, 2, 3]}
        assert ck.saves == 1
        assert ck.total_time > 0

    def test_maybe_respects_step_cadence(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        solver = FakeSolver({})
        assert ck.maybe(solver, 5) is None  # below cadence
        assert ck.maybe(solver, 10) is not None
        assert ck.maybe(solver, 12) is None  # cadence restarts after a save

    def test_mark_resumed_resets_cadence(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        ck.mark_resumed(100)
        assert ck.maybe(FakeSolver({}), 105) is None
        assert ck.maybe(FakeSolver({}), 110) is not None

    def test_find_checkpoint(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        assert find_checkpoint(str(tmp_path), **self.CONFIG) is None
        ck.save(FakeSolver({}), step=1)
        assert find_checkpoint(str(tmp_path), **self.CONFIG) == ck.path
        # A different config maps to a different file.
        assert find_checkpoint(str(tmp_path), "abc123", "vsfs",
                               delta=False, ptrepo=True) is None

    def test_discard(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        ck.save(FakeSolver({}), step=1)
        ck.discard()
        assert not os.path.exists(ck.path)
        ck.discard()  # idempotent

    def test_ir_mismatch(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        path = ck.save(FakeSolver({}), step=1)
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path, ir_hash="different", analysis="vsfs",
                            delta=True, ptrepo=True)
        assert exc.value.reason == "ir-mismatch"

    def test_config_mismatch(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        path = ck.save(FakeSolver({}), step=1)
        for kwargs in ({"analysis": "sfs"}, {"delta": False},
                       {"ptrepo": False}):
            expect = dict(self.CONFIG)
            expect.update(kwargs)
            with pytest.raises(CheckpointError) as exc:
                load_checkpoint(path, **expect)
            assert exc.value.reason == "config-mismatch"

    def test_corrupt_checkpoint_is_quarantined(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        path = ck.save(FakeSolver({}), step=1)
        with open(path, "w") as handle:
            handle.write("not json")
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path)
        assert exc.value.reason == "corrupt"
        assert not os.path.exists(path)  # moved aside
        assert ".quarantined" in exc.value.path
        assert os.path.exists(exc.value.path)

    def test_deterministic_paths(self, tmp_path):
        first = checkpoint_path(str(tmp_path), "h", "vsfs", True, True)
        second = checkpoint_path(str(tmp_path), "h", "vsfs", True, True)
        other = checkpoint_path(str(tmp_path), "h", "sfs", True, True)
        assert first == second != other

    def test_schema_constant_in_envelope(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        path = ck.save(FakeSolver({}), step=1)
        with open(path) as handle:
            document = json.load(handle)
        assert document["kind"] == CHECKPOINT_KIND
        assert document["schema"] == CHECKPOINT_SCHEMA
