"""Unit tests for the shared resilience policy (repro.runtime.resilience)
and the fault-domain table (repro.runtime.faults)."""

import pytest

from repro.errors import AnalysisError, InjectedFault
from repro.runtime.faults import (
    FAULT_DOMAINS,
    FAULT_POINTS,
    FaultPlan,
    describe_fault_points,
    fault_domain,
)
from repro.runtime.resilience import (
    DEFAULT_HEARTBEAT_SECONDS,
    DEFAULT_WORKER_FAILURE_BUDGET,
    IO_RETRY,
    RetryPolicy,
)


class TestRetryDelays:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(retries=4, base_delay=0.1, multiplier=2.0,
                             max_delay=None, jitter=0.0)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_cap_bounds_the_schedule(self):
        policy = RetryPolicy(retries=6, base_delay=1.0, multiplier=10.0,
                             max_delay=3.0, jitter=0.0)
        assert max(policy.delays()) == 3.0

    def test_jitter_is_subtractive_and_bounded(self):
        policy = RetryPolicy(retries=8, base_delay=0.5, multiplier=2.0,
                             max_delay=4.0, jitter=0.5, seed=7)
        for attempt, delay in enumerate(policy.delays(), 1):
            ceiling = min(0.5 * 2 ** (attempt - 1), 4.0)
            # Jitter only ever *shortens* the sleep: the cap still holds.
            assert ceiling * 0.5 <= delay <= ceiling

    def test_deterministic_across_instances(self):
        a = RetryPolicy(jitter=0.4, seed=42)
        b = RetryPolicy(jitter=0.4, seed=42)
        assert list(a.delays()) == list(b.delays())
        assert a.delay(2) == b.delay(2)  # pure function of (policy, n)

    def test_different_seeds_differ(self):
        a = RetryPolicy(jitter=0.9, seed=1)
        b = RetryPolicy(jitter=0.9, seed=2)
        assert list(a.delays()) != list(b.delays())

    def test_attempt_is_one_based(self):
        with pytest.raises(AnalysisError):
            RetryPolicy().delay(0)

    def test_seeded_for_is_stable_and_spread(self):
        base = RetryPolicy(jitter=0.5)
        assert base.seeded_for("a.c") == base.seeded_for("a.c")
        assert base.seeded_for("a.c").seed != base.seeded_for("b.c").seed
        # Everything except the seed is preserved.
        derived = base.seeded_for("prog.c")
        assert (derived.retries, derived.base_delay, derived.jitter) == (
            base.retries, base.base_delay, base.jitter)


class TestRetryRun:
    def _flaky(self, failures, exc_type=OSError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc_type(f"transient #{calls['n']}")
            return "ok"

        return fn, calls

    def test_retries_then_succeeds(self):
        fn, calls = self._flaky(2)
        policy = RetryPolicy(retries=3, jitter=0.0, base_delay=0.0)
        slept = []
        assert policy.run(fn, sleep=slept.append) == "ok"
        assert calls["n"] == 3 and len(slept) == 2

    def test_exhaustion_reraises_last_error(self):
        fn, calls = self._flaky(10)
        policy = RetryPolicy(retries=2, jitter=0.0, base_delay=0.0)
        with pytest.raises(OSError):
            policy.run(fn, sleep=lambda _s: None)
        assert calls["n"] == 3  # initial call + 2 retries

    def test_unlisted_exception_propagates_immediately(self):
        fn, calls = self._flaky(5, exc_type=ValueError)
        with pytest.raises(ValueError):
            RetryPolicy(retries=3).run(fn, sleep=lambda _s: None)
        assert calls["n"] == 1  # never retried: not a transient error

    def test_injected_fault_retryable_when_listed(self):
        plan = FaultPlan(point="checkpoint_write")  # once=True

        def fn():
            plan.fire("checkpoint_write", stage="test")
            return "healed"

        policy = RetryPolicy(retries=1, jitter=0.0, base_delay=0.0)
        observed = []
        result = policy.run(fn, retry_on=(OSError, InjectedFault),
                            sleep=lambda _s: None,
                            on_retry=lambda n, e: observed.append((n, type(e))))
        assert result == "healed"
        assert observed == [(1, InjectedFault)]

    def test_io_retry_defaults_are_tiny(self):
        # In-process healing must cost milliseconds: every delay under
        # the cap, and the cap itself well under a second.
        assert IO_RETRY.max_delay <= 0.5
        assert all(d <= IO_RETRY.max_delay for d in IO_RETRY.delays())


class TestFaultDomains:
    def test_domains_partition_the_points(self):
        seen = [p for points in FAULT_DOMAINS.values() for p in points]
        assert tuple(seen) == FAULT_POINTS
        assert len(set(seen)) == len(seen)

    def test_every_point_resolves_to_its_domain(self):
        for domain, points in FAULT_DOMAINS.items():
            for point in points:
                assert fault_domain(point) == domain

    def test_unknown_point_is_typed_error(self):
        with pytest.raises(AnalysisError):
            fault_domain("warp_core_breach")

    def test_plan_domain_property(self):
        assert FaultPlan(point="frontier_send").domain == "parallel"
        assert FaultPlan(point="stage_cache_read").domain == "io"
        assert FaultPlan().domain == "*"

    def test_describe_lists_every_point_and_domain(self):
        text = describe_fault_points()
        for domain in FAULT_DOMAINS:
            assert f"[{domain}]" in text
        for point in FAULT_POINTS:
            assert point in text
        assert f"{len(FAULT_POINTS)} points" in text

    def test_watchdog_defaults(self):
        assert DEFAULT_WORKER_FAILURE_BUDGET >= 2  # one revival guaranteed
        assert DEFAULT_HEARTBEAT_SECONDS > 0
