"""Unit tests for the resource-governance runtime (repro.runtime).

Budget/BudgetMeter enforcement semantics, deterministic fault plans,
RunReport bookkeeping, and the run_ladder fallback contract — all without
touching the solvers (integration coverage lives in
tests/integration/test_fault_injection.py).
"""

import tracemalloc

import pytest

from repro.errors import AnalysisError, BudgetExceeded, InjectedFault, ReproError
from repro.runtime import Budget, FaultPlan, RunReport, run_ladder
from repro.runtime.budget import CHECK_INTERVAL, BudgetMeter
from repro.runtime.faults import FAULT_POINTS


class TestBudget:
    def test_unlimited_by_default(self):
        assert Budget().is_unlimited()
        assert not Budget(max_steps=5).is_unlimited()

    def test_describe(self):
        assert Budget().describe() == "unlimited"
        text = Budget(wall_seconds=1.5, max_steps=10,
                      max_memory_bytes=2 * 1024 * 1024).describe()
        assert "wall 1.5s" in text and "steps 10" in text and "2 MiB" in text

    def test_meter_is_fresh_each_time(self):
        budget = Budget(max_steps=1)
        assert budget.meter() is not budget.meter()


class TestBudgetMeterSteps:
    def test_step_limit_is_exact(self):
        meter = Budget(max_steps=3).meter().start()
        meter.tick()
        meter.tick()
        meter.tick()  # exactly at the limit: still fine
        with pytest.raises(BudgetExceeded) as info:
            meter.tick()
        assert info.value.resource == "steps"
        assert info.value.limit == 3 and info.value.used == 4

    def test_zero_step_budget_trips_on_first_tick(self):
        meter = Budget(max_steps=0).meter().start()
        with pytest.raises(BudgetExceeded):
            meter.tick()

    def test_unlimited_never_raises(self):
        meter = Budget().meter().start()
        for __ in range(CHECK_INTERVAL * 3):
            meter.tick()
        assert meter.steps == CHECK_INTERVAL * 3


class TestBudgetMeterWallClock:
    def test_zero_wall_budget_trips_on_check(self):
        meter = Budget(wall_seconds=0).meter().start()
        with pytest.raises(BudgetExceeded) as info:
            meter.check()
        assert info.value.resource == "wall"

    def test_zero_wall_budget_trips_on_first_tick(self):
        # tick probes wall/memory on the first tick, not only every
        # CHECK_INTERVAL-th — a zero budget must not get a free interval.
        meter = Budget(wall_seconds=0).meter().start()
        with pytest.raises(BudgetExceeded):
            meter.tick()

    def test_check_implies_start(self):
        meter = Budget(wall_seconds=1000).meter()
        assert not meter.started()
        meter.check()
        assert meter.started()


class TestBudgetMeterMemory:
    def test_memory_budget_traces_and_trips(self):
        was_tracing = tracemalloc.is_tracing()
        meter = Budget(max_memory_bytes=1).meter().start()
        try:
            ballast = [bytearray(4096) for __ in range(4)]  # noqa: F841
            with pytest.raises(BudgetExceeded) as info:
                meter.check()
            assert info.value.resource == "memory"
            assert info.value.used > 1
        finally:
            meter.stop()
        assert tracemalloc.is_tracing() == was_tracing  # stop() releases tracing

    def test_peak_bytes_none_when_not_tracing(self):
        if tracemalloc.is_tracing():
            pytest.skip("ambient tracemalloc active")
        meter = Budget(max_steps=5).meter().start()  # no memory budget
        assert meter.peak_bytes() is None
        meter.stop()


class TestFaultPlan:
    def test_rejects_unknown_point(self):
        with pytest.raises(AnalysisError):
            FaultPlan(point="not-a-point")

    def test_rejects_zero_hit(self):
        with pytest.raises(AnalysisError):
            FaultPlan(at_hit=0)

    @pytest.mark.parametrize("point", FAULT_POINTS)
    def test_fires_on_nth_hit_of_matching_point(self, point):
        plan = FaultPlan(point=point, at_hit=2)
        plan.fire(point, stage="sfs")  # hit 1: no fire
        with pytest.raises(InjectedFault) as info:
            plan.fire(point, stage="sfs")
        assert info.value.point == point
        assert info.value.stage == "sfs"
        assert info.value.hit == 2
        assert plan.fired == [(point, "sfs", 2)]

    def test_ignores_other_points(self):
        plan = FaultPlan(point="otf_edge")
        for __ in range(5):
            plan.fire("propagate", stage="vsfs")
        assert plan.fired == []
        assert plan.hits["propagate"] == 5

    def test_once_disarms_after_firing(self):
        plan = FaultPlan(point="propagate", at_hit=1)
        with pytest.raises(InjectedFault):
            plan.fire("propagate", stage="vsfs")
        plan.fire("propagate", stage="sfs")  # disarmed: the retry completes
        assert len(plan.fired) == 1

    def test_wildcard_matches_first_point_reached(self):
        plan = FaultPlan(point="*", at_hit=1)
        with pytest.raises(InjectedFault) as info:
            plan.fire("pre_meld", stage="vsfs")
        assert info.value.point == "pre_meld"

    def test_probability_stream_is_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan(point="propagate", probability=0.3, seed=seed,
                             once=False)
            pattern = []
            for __ in range(64):
                try:
                    plan.fire("propagate")
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        assert firing_pattern(seed=7) == firing_pattern(seed=7)
        assert any(firing_pattern(seed=7))

    def test_probability_zero_never_fires(self):
        plan = FaultPlan(probability=0.0)
        for point in FAULT_POINTS:
            plan.fire(point)
        assert plan.fired == []


class TestRunReport:
    def test_completed_run(self):
        report = RunReport(requested="vsfs")
        report.record_attempt("vsfs")
        report.finish(precision_level="vsfs")
        assert not report.degraded
        assert report.stage_reached == "vsfs"
        assert report.summary() == "vsfs completed"
        assert report.exception_chain() == []

    def test_degraded_run(self):
        report = RunReport(requested="vsfs", budget=Budget(max_steps=1))
        report.record_attempt("vsfs", error=BudgetExceeded("steps", resource="steps"))
        report.record_attempt("andersen")
        report.finish(precision_level="andersen")
        assert report.degraded and report.degraded_from == "vsfs"
        assert "degraded to andersen" in report.summary()
        assert "budget-exceeded" in report.summary()
        assert len(report.exception_chain()) == 1

    def test_to_dict_is_json_ready(self):
        import json
        report = RunReport(requested="sfs", budget=Budget(wall_seconds=2))
        report.record_attempt("sfs", error=InjectedFault(point="propagate"))
        report.record_attempt("andersen")
        report.finish(precision_level="andersen")
        record = json.loads(json.dumps(report.to_dict()))
        assert record["requested"] == "sfs"
        assert record["degraded"] is True
        assert record["budget"]["wall_seconds"] == 2
        assert [a["outcome"] for a in record["attempts"]] == [
            "fault-injected", "completed"]

    def test_render_mentions_budget_and_attempts(self):
        report = RunReport(requested="vsfs", budget=Budget(max_steps=9))
        report.record_attempt("vsfs")
        report.finish(precision_level="vsfs")
        text = report.render()
        assert "run report" in text and "steps 9" in text
        assert "1. vsfs: completed" in text


class TestRunLadder:
    def test_first_rung_success(self):
        result, report = run_ladder([("vsfs", lambda meter: "precise")])
        assert result == "precise"
        assert report.precision_level == "vsfs" and not report.degraded

    def test_falls_through_to_floor(self):
        def failing(meter):
            raise InjectedFault(point="propagate", stage="vsfs", hit=1)

        result, report = run_ladder([
            ("vsfs", failing),
            ("andersen", lambda meter: "floor"),
        ])
        assert result == "floor"
        assert report.degraded and report.degraded_from == "vsfs"
        assert report.attempts[0].outcome == "fault-injected"
        assert report.attempts[0].stage == "vsfs"

    def test_no_fallback_reraises_with_report(self):
        def failing(meter):
            raise BudgetExceeded("boom", resource="steps")

        with pytest.raises(BudgetExceeded) as info:
            run_ladder([("vsfs", failing), ("andersen", lambda meter: "x")],
                       fallback=False)
        assert info.value.run_report is not None
        assert info.value.run_report.attempts[0].outcome == "budget-exceeded"

    def test_floor_failure_reraises(self):
        def failing(meter):
            raise ReproError("even the floor broke")

        with pytest.raises(ReproError) as info:
            run_ladder([("andersen", failing)])
        assert info.value.run_report is not None

    def test_floor_runs_ungoverned(self):
        seen = {}

        def floor(meter):
            seen["meter"] = meter
            return "answer"

        result, report = run_ladder(
            [("vsfs", lambda meter: (_ for _ in ()).throw(
                BudgetExceeded("x", resource="wall"))),
             ("andersen", floor)],
            budget=Budget(wall_seconds=0),
        )
        assert result == "answer"
        assert seen["meter"] is None  # the guaranteed floor takes no meter

    def test_shared_meter_spans_rungs(self):
        meters = []

        def rung(meter):
            meters.append(meter)
            meter.tick()
            raise BudgetExceeded("spent", resource="steps")

        result, report = run_ladder(
            [("vsfs", rung), ("sfs", rung), ("andersen", lambda meter: "floor")],
            budget=Budget(max_steps=100),
        )
        assert result == "floor"
        assert meters[0] is meters[1]  # one meter, whole-run budget
        assert report.steps_used == 2

    def test_empty_ladder_is_an_error(self):
        with pytest.raises(AnalysisError):
            run_ladder([])

    def test_memory_error_degrades(self):
        def oom(meter):
            raise MemoryError

        result, report = run_ladder([("vsfs", oom),
                                     ("andersen", lambda meter: "floor")])
        assert result == "floor"
        assert report.attempts[0].outcome == "error"
        assert report.attempts[0].error_type == "MemoryError"
