"""Unit tests for the stage-graph engine (repro.engine)."""

import pytest

from repro.engine import Engine, SOLVE_LEVELS, StageContext, default_stages
from repro.errors import AnalysisError, BudgetExceeded
from repro.frontend import compile_c
from repro.runtime.budget import Budget

SRC = """
int *g; int x; int y;
int main() { g = &x; int *a; a = g; g = &y; return 0; }
"""

OTHER_SRC = "int *p; int z; int main() { p = &z; return 0; }"


def make_engine(source=SRC):
    ctx = StageContext(module=None, source=source, language="c")
    return Engine(ctx)


class TestEnsure:
    def test_topological_order(self):
        engine = make_engine()
        engine.ensure("svfg")
        # Every upstream stage materialised exactly once, in the memo.
        for name in ("parse", "prepare", "andersen", "modref", "memssa",
                     "svfg"):
            assert name in engine.ctx.artifacts

    def test_memoised(self):
        engine = make_engine()
        first = engine.ensure("svfg")
        assert engine.ensure("svfg") is first
        assert engine.ensure("andersen") is engine.ensure("andersen")

    def test_unknown_stage_rejected(self):
        with pytest.raises(AnalysisError, match="unknown stage"):
            make_engine().ensure("magic")

    def test_prepared_module_short_circuits_parse(self):
        module = compile_c(SRC)
        ctx = StageContext(module=module, source=None)
        engine = Engine(ctx)
        assert engine.ensure("prepare") is module

    def test_versioning_built_on_shared_svfg(self):
        engine = make_engine()
        versioning = engine.ensure("versioning")
        assert versioning.svfg is engine.ctx.artifacts["svfg"]


class TestFingerprints:
    def test_deterministic_across_engines(self):
        one, two = make_engine(), make_engine()
        one.ensure("svfg")
        two.ensure("svfg")
        for name in ("prepare", "andersen", "modref", "memssa", "svfg"):
            assert one.fingerprint(name) == two.fingerprint(name)

    def test_source_change_changes_every_fingerprint(self):
        one, two = make_engine(SRC), make_engine(OTHER_SRC)
        one.ensure("svfg")
        two.ensure("svfg")
        for name in ("prepare", "andersen", "modref", "memssa", "svfg"):
            assert one.fingerprint(name) != two.fingerprint(name)

    def test_solve_fingerprint_varies_with_ablation_flags(self):
        engine = make_engine()
        engine.ensure("svfg")
        stage = engine.stages["solve:vsfs"]
        base = engine._fingerprint_for(stage, engine.ctx)
        ablated = engine._fingerprint_for(
            stage, engine.ctx.for_solve(delta=False))
        assert base != ablated

    def test_substrate_fingerprint_ignores_ablation_flags(self):
        with_delta = make_engine()
        without = Engine(StageContext(module=None, source=SRC,
                                      language="c", delta=False))
        with_delta.ensure("svfg")
        without.ensure("svfg")
        assert with_delta.fingerprint("svfg") == without.fingerprint("svfg")


class TestSolve:
    def test_all_levels_produce_results(self):
        engine = make_engine()
        for level in SOLVE_LEVELS:
            assert engine.solve(level) is not None

    def test_andersen_plain_call_memoises(self):
        engine = make_engine()
        assert engine.solve("andersen") is engine.ensure("andersen")

    def test_andersen_meter_reuses_memo(self):
        engine = make_engine()
        memo = engine.ensure("andersen")
        meter = Budget(wall_seconds=60.0).meter()
        meter.start()
        try:
            assert engine.solve("andersen", meter=meter) is memo
        finally:
            meter.stop()

    def test_unknown_level_rejected(self):
        with pytest.raises(AnalysisError, match="unknown solve level"):
            make_engine().solve("magic")

    def test_meter_threads_through_to_solver(self):
        engine = make_engine()
        engine.ensure("svfg")  # substrate outside the governed window
        meter = Budget(max_steps=1).meter()
        meter.start()
        try:
            with pytest.raises(BudgetExceeded):
                engine.solve("vsfs", meter=meter)
        finally:
            meter.stop()

    def test_governed_solve_matches_ungoverned(self):
        governed_engine = make_engine()
        meter = Budget(wall_seconds=300.0).meter()
        meter.start()
        try:
            governed = governed_engine.solve("vsfs", meter=meter)
        finally:
            meter.stop()
        assert governed.snapshot() == make_engine().solve("vsfs").snapshot()


class TestTrace:
    def test_main_phase_split(self):
        engine = make_engine()
        engine.solve("vsfs")
        records = {rec.stage: rec for rec in engine.trace.records}
        assert records["solve:vsfs"].main_phase
        for name in ("parse", "prepare", "andersen", "modref", "memssa",
                     "svfg"):
            assert not records[name].main_phase

    def test_substrate_excluded_from_main_phase_wall(self):
        engine = make_engine()
        engine.solve("sfs")
        trace = engine.trace
        total = sum(rec.wall_s for rec in trace.records)
        assert trace.substrate_wall() + trace.main_phase_wall() == \
            pytest.approx(total)

    def test_render_mentions_exclusion(self):
        engine = make_engine()
        engine.solve("sfs")
        assert "excluded from main phase" in engine.trace.render()

    def test_to_dict_schema(self):
        engine = make_engine()
        engine.solve("sfs")
        for record in engine.trace.to_dict():
            assert set(record) >= {"stage", "main_phase", "wall_s", "steps",
                                   "cache", "cache_hit", "fingerprint"}

    def test_external_hit_recorded(self):
        engine = make_engine()
        engine.record_external_hit("solve:vsfs", "result-store", nbytes=7)
        record = engine.trace.record_for("solve:vsfs")
        assert record.cache == "result-store"
        assert record.cache_hit
        assert record.main_phase

    def test_failed_stage_records_outcome(self):
        engine = make_engine()
        engine.ensure("svfg")
        meter = Budget(max_steps=1).meter()
        meter.start()
        try:
            with pytest.raises(BudgetExceeded):
                engine.solve("sfs", meter=meter)
        finally:
            meter.stop()
        record = engine.trace.record_for("solve:sfs")
        assert record.outcome == "BudgetExceeded"


class TestRegistry:
    def test_default_stages_cover_every_solve_level(self):
        stages = default_stages()
        for level in SOLVE_LEVELS:
            assert f"solve:{level}" in stages

    def test_solve_stages_are_main_phase(self):
        for name, stage in default_stages().items():
            assert stage.main_phase == name.startswith("solve:")
