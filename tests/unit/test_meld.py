"""Unit tests for generic meld labelling (§IV-B, Figures 3 and 4)."""

import pytest

from repro.datastructs.graph import DiGraph
from repro.core.meld import MeldLabelling, meld_label


class TestMeldLabelFast:
    """The bit-mask fast path."""

    def test_single_chain(self):
        labels = meld_label(3, [(0, 1), (1, 2)], {0: 0b1})
        assert labels == [0b1, 0b1, 0b1]

    def test_meld_at_join(self):
        labels = meld_label(4, [(0, 2), (1, 2), (2, 3)], {0: 0b1, 1: 0b10})
        assert labels[2] == 0b11
        assert labels[3] == 0b11

    def test_unreachable_keeps_identity(self):
        labels = meld_label(3, [(0, 1)], {0: 0b1})
        assert labels[2] == 0

    def test_cycle_converges(self):
        labels = meld_label(3, [(0, 1), (1, 2), (2, 1)], {0: 0b1})
        assert labels[1] == labels[2] == 0b1

    def test_two_prelabels_in_cycle_merge(self):
        labels = meld_label(4, [(0, 2), (1, 3), (2, 3), (3, 2)], {0: 0b1, 1: 0b10})
        assert labels[2] == labels[3] == 0b11

    def test_frozen_nodes_never_change(self):
        labels = meld_label(3, [(0, 1), (1, 2)], {0: 0b1, 1: 0b100}, frozen=[1])
        assert labels[1] == 0b100        # prelabel kept, 0's label not melded
        assert labels[2] == 0b100        # but the frozen node still yields

    def test_empty_graph(self):
        assert meld_label(0, [], {}) == []

    def test_no_prelabels(self):
        assert meld_label(3, [(0, 1), (1, 2)], {}) == [0, 0, 0]


def _pattern_meld(a: frozenset, b: frozenset) -> frozenset:
    return a | b


class TestMeldLabellingGeneric:
    def build_figure4_graph(self):
        """A graph with the structure the paper's Figure 4 illustrates:
        two prelabelled nodes (patterns ○ at n1, ⊗ at n2); nodes 4 and 7
        end up equal via *different* incoming neighbours, as do 5 and 8."""
        g = DiGraph()
        edges = [
            (1, 3), (1, 4), (1, 6), (6, 7),       # ○ reaches 3, 4, 6, 7
            (1, 5), (2, 5),                        # 5 melds ○ ⊗
            (4, 8), (2, 8),                        # 8 melds ○ (via 4) and ⊗
        ]
        for a, b in edges:
            g.add_edge(a, b)
        g.add_node(9)  # unreachable: stays identity
        ml = MeldLabelling(g, meld=_pattern_meld, identity=frozenset())
        ml.prelabel(1, frozenset({"circle"}))
        ml.prelabel(2, frozenset({"cross"}))
        return ml

    def test_figure4_equal_labels_from_different_neighbours(self):
        ml = self.build_figure4_graph()
        labels = ml.run()
        # Equivalence is by *which prelabels reach a node*, not by shared
        # predecessors (the paper's point about nodes 5/8 and 4/7).
        assert labels[4] == labels[7] == frozenset({"circle"})
        assert labels[5] == labels[8] == frozenset({"circle", "cross"})

    def test_figure4_identity_for_unreachable(self):
        ml = self.build_figure4_graph()
        labels = ml.run()
        assert labels[9] == frozenset()

    def test_figure4_prelabelled_keep_labels(self):
        ml = self.build_figure4_graph()
        labels = ml.run()
        assert labels[1] == frozenset({"circle"})
        assert labels[2] == frozenset({"cross"})

    def test_equivalence_classes(self):
        ml = self.build_figure4_graph()
        labels = ml.run()
        classes = ml.equivalence_classes(labels)
        both = frozenset({"circle", "cross"})
        assert sorted(classes[both]) == [5, 8]
        assert sorted(classes[frozenset()]) == [9]

    def test_prelabel_melds_on_duplicate(self):
        g = DiGraph()
        g.add_node("a")
        ml = MeldLabelling(g, meld=_pattern_meld, identity=frozenset())
        ml.prelabel("a", frozenset({"x"}))
        ml.prelabel("a", frozenset({"y"}))
        assert ml.run()["a"] == frozenset({"x", "y"})

    def test_bitwise_or_operator_matches_fast_path(self):
        """The generic engine with int|or must equal meld_label."""
        edges = [(0, 1), (1, 2), (2, 1), (0, 3), (3, 2), (4, 2)]
        g = DiGraph()
        for a, b in edges:
            g.add_edge(a, b)
        ml = MeldLabelling(g, meld=lambda a, b: a | b, identity=0)
        ml.prelabel(0, 0b1)
        ml.prelabel(4, 0b10)
        generic = ml.run()
        fast = meld_label(5, edges, {0: 0b1, 4: 0b10})
        assert [generic[i] for i in range(5)] == fast
