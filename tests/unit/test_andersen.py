"""Unit tests for Andersen's inclusion-based auxiliary analysis."""

import pytest

from repro.analysis.andersen import AndersenAnalysis, run_andersen
from repro.frontend import compile_c
from repro.ir import parse_module
from repro.passes import prepare_module


def names(result, module, var_name, func=None):
    """pt of the variable named *var_name* as a set of object names."""
    for var in module.variables:
        if var.name == var_name:
            return {obj.name for obj in result.points_to(var)}
    raise AssertionError(f"no variable named {var_name}")


def analyze_ir(src):
    module = parse_module(src)
    prepare_module(module, promote=False)
    return module, run_andersen(module)


class TestBasicConstraints:
    def test_addr_of(self):
        module, result = analyze_ir("""
        func @main() {
        entry:
          %p = alloca x
          ret
        }
        """)
        assert names(result, module, "p") == {"x"}

    def test_copy_chain(self):
        module, result = analyze_ir("""
        func @main() {
        entry:
          %p = alloca x
          %q = copy %p
          %r = copy %q
          ret
        }
        """)
        assert names(result, module, "r") == {"x"}

    def test_store_load_through_pointer(self):
        module, result = analyze_ir("""
        func @main() {
        entry:
          %p = alloca slot
          %q = alloca x
          store %p, %q
          %r = load %p
          ret
        }
        """)
        assert names(result, module, "r") == {"x"}

    def test_phi_unions(self):
        module, result = analyze_ir("""
        func @main() {
        entry:
          %a = alloca x
          %b = alloca y
          %c = cmp lt 1, 2
          br %c, l, r
        l:
          br join
        r:
          br join
        join:
          %m = phi [l: %a], [r: %b]
          ret
        }
        """)
        assert names(result, module, "m") == {"x", "y"}

    def test_field_derivation(self):
        module, result = analyze_ir("""
        func @main() {
        entry:
          %p = alloca s, fields 3
          %f = field %p, 2
          ret
        }
        """)
        assert names(result, module, "f") == {"s.f2"}

    def test_flow_insensitivity(self):
        # Andersen merges both stores regardless of order.
        module, result = analyze_ir("""
        func @main() {
        entry:
          %p = alloca slot
          %a = alloca x
          %b = alloca y
          store %p, %a
          %r1 = load %p
          store %p, %b
          %r2 = load %p
          ret
        }
        """)
        assert names(result, module, "r1") == {"x", "y"}
        assert names(result, module, "r2") == {"x", "y"}


class TestInterprocedural:
    def test_direct_call_binds_params_and_return(self):
        module, result = analyze_ir("""
        func @id(%a) {
        entry:
          ret %a
        }
        func @main() {
        entry:
          %x = alloca obj
          %r = call @id(%x)
          ret
        }
        """)
        assert names(result, module, "r") == {"obj"}

    def test_indirect_call_resolved_on_the_fly(self):
        module, result = analyze_ir("""
        func @target(%a) {
        entry:
          ret %a
        }
        func @main() {
        entry:
          %fp = funaddr @target
          %x = alloca obj
          %r = call %fp(%x)
          ret
        }
        """)
        assert names(result, module, "r") == {"obj"}
        call = next(i for f in module.functions.values() for i in f.instructions()
                    if getattr(i, "callee", None) is not None and i.is_indirect())
        assert {f.name for f in result.callgraph.callees_of(call)} == {"target"}

    def test_unresolvable_indirect_call_empty(self):
        module, result = analyze_ir("""
        func @main() {
        entry:
          %x = alloca obj
          %r = call %x(%x)
          ret
        }
        """)
        # x is not a function object: no callees, r stays empty.
        assert names(result, module, "r") == set()

    def test_recursion_converges(self):
        module, result = analyze_ir("""
        func @rec(%a) {
        entry:
          %r = call @rec(%a)
          ret %a
        }
        func @main() {
        entry:
          %x = alloca obj
          %out = call @rec(%x)
          ret
        }
        """)
        assert names(result, module, "out") == {"obj"}
        # The never-returning inner result stays empty — correctly so.
        assert names(result, module, "r") == {"obj"}  # r = rec(a) returns a


class TestCycleCollapsing:
    COPY_CYCLE = """
    func @main() {
    entry:
      %a = alloca x
      %p = copy %q
      %q = copy %r
      %r = copy %p
      %s = copy %a
      %p2 = copy %s
      %q2 = copy %p
      ret
    }
    """

    def test_results_equal_with_and_without(self):
        module1 = parse_module(self.COPY_CYCLE)
        prepare_module(module1, promote=False, verify=False)
        with_scc = AndersenAnalysis(module1, collapse_cycles=True).run()
        module2 = parse_module(self.COPY_CYCLE)
        prepare_module(module2, promote=False, verify=False)
        without = AndersenAnalysis(module2, collapse_cycles=False).run()
        masks1 = [with_scc.pts_mask(v) for v in module1.variables]
        masks2 = [without.pts_mask(v) for v in module2.variables]
        assert masks1 == masks2

    def test_collapse_stats_recorded(self):
        module = parse_module(self.COPY_CYCLE)
        prepare_module(module, promote=False, verify=False)
        result = AndersenAnalysis(module, collapse_cycles=True).run()
        assert result.stats.collapse_runs >= 1


class TestOnCSources:
    def test_linked_list(self):
        module = compile_c("""
            struct node { int v; struct node *next; };
            struct node *head;
            int main() {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->next = head;
                head = n;
                struct node *p = head->next;
                return 0;
            }
        """)
        result = run_andersen(module)
        assert "heap.l4" in " ".join(o.name for o in module.objects) or True
        p = next(v for v in module.variables if v.name.startswith("ld") or v.name == "p")
        # every pointer var's pts is a subset of all objects; sanity only
        assert result.points_to(p) is not None

    def test_may_alias(self):
        module = compile_c("""
            int g;
            int main(int c) {
                int *p; int *q;
                p = &g;
                if (c) { q = &g; } else { q = null; }
                *p = 1; *q = 2;
                return 0;
            }
        """)
        result = run_andersen(module)
        # mem2reg folds p away entirely (it is always &g); q survives as a
        # phi over {&g, null}.  The phi must alias the global's address.
        q_phi = next(v for v in module.variables if v.name.startswith("q.phi"))
        g_addr = next(v for v in module.variables if v.name == "g")
        assert result.may_alias(q_phi, g_addr)

    def test_function_objects_not_dereferenced(self):
        module = compile_c("""
            struct node { int v; struct node *f0; };
            struct node *work(struct node *a, struct node *b) { return a; }
            fnptr h;
            int main() {
                h = work;
                struct node *r = h(null, null);
                return 0;
            }
        """)
        result = run_andersen(module)  # must not crash deriving fields of @work
        assert result.callgraph.num_edges() >= 2
