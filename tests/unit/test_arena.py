"""The memory-mapped mask arena: format, append/attach, corruption."""

import os
import struct

import pytest

from repro.datastructs.arena import HEADER_SIZE, MAGIC, ArenaError, PTArena


class TestArenaFormat:
    def test_open_creates_empty_arena_with_record_zero(self, tmp_path):
        path = str(tmp_path / "arena.bin")
        arena = PTArena.open(path)
        try:
            assert len(arena) == 1  # record 0 = the empty set
            assert arena.mask(0) == 0
            assert arena.resident_bytes == HEADER_SIZE + 4
        finally:
            arena.close()
        with open(path, "rb") as handle:
            raw = handle.read()
        magic, count, used = struct.unpack_from("<8sQQ", raw)
        assert magic == MAGIC and count == 1 and used == 4

    def test_append_then_reopen_round_trips(self, tmp_path):
        path = str(tmp_path / "arena.bin")
        masks = [0b101, 0b1, (1 << 200) | 7, 0b11110000]
        arena = PTArena.open(path)
        try:
            assert arena.append_masks(masks) == len(masks)
        finally:
            arena.close()
        arena = PTArena.open(path)
        try:
            assert len(arena) == 1 + len(masks)
            assert list(arena.masks()) == [0] + masks
        finally:
            arena.close()

    def test_attach_is_read_only(self, tmp_path):
        path = str(tmp_path / "arena.bin")
        writer = PTArena.open(path)
        writer.append_masks([0b11])
        writer.close()
        reader = PTArena.attach(path)
        try:
            assert list(reader.masks()) == [0, 0b11]
            with pytest.raises(ArenaError):
                reader.append_masks([0b100])
        finally:
            reader.close()

    def test_attach_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            PTArena.attach(str(tmp_path / "absent.bin"))


class TestArenaCorruption:
    def _fresh(self, tmp_path, masks=(0b1, 0b10)):
        path = str(tmp_path / "arena.bin")
        arena = PTArena.open(path)
        arena.append_masks(list(masks))
        arena.close()
        return path

    def test_bad_magic_rejected(self, tmp_path):
        path = self._fresh(tmp_path)
        with open(path, "r+b") as handle:
            handle.write(b"NOTANARE")
        with pytest.raises(ArenaError):
            PTArena.attach(path)

    def test_truncated_body_rejected(self, tmp_path):
        path = self._fresh(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        with pytest.raises(ArenaError):
            PTArena.attach(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = self._fresh(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(HEADER_SIZE - 1)
        with pytest.raises(ArenaError):
            PTArena.attach(path)

    def test_unflushed_tail_past_used_is_ignored(self, tmp_path):
        """Records are appended before the header is rewritten, so a
        crash between the two leaves trailing bytes past ``used`` —
        readers must treat the header as the truth and ignore them."""
        path = self._fresh(tmp_path)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<I", 1) + b"\x07")  # orphan record
        arena = PTArena.attach(path)
        try:
            assert list(arena.masks()) == [0, 0b1, 0b10]
        finally:
            arena.close()

    def test_append_after_reopen_extends_in_place(self, tmp_path):
        path = self._fresh(tmp_path, masks=[0b1])
        arena = PTArena.open(path)
        try:
            arena.append_masks([0b110])
            assert list(arena.masks()) == [0, 0b1, 0b110]
        finally:
            arena.close()
