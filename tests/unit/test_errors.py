"""Unit tests for the exception hierarchy (repro.errors).

Covers the class hierarchy contract the CLI exit codes are built on, the
ParseError position-carrying fix, the context-carrying governance errors
(BudgetExceeded / InjectedFault), and a source sweep proving every public
raise site in the library uses a typed ReproError subclass.
"""

import ast
import pathlib

import pytest

from repro.errors import (
    AnalysisError,
    BudgetExceeded,
    InjectedFault,
    IRError,
    ParseError,
    ReproError,
    SolverError,
)


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        IRError, ParseError, AnalysisError, SolverError, BudgetExceeded,
        InjectedFault,
    ])
    def test_everything_is_a_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_analysis_branch(self):
        assert issubclass(SolverError, AnalysisError)
        assert issubclass(BudgetExceeded, AnalysisError)
        assert issubclass(InjectedFault, SolverError)

    def test_catching_the_base_catches_all(self):
        for exc in (IRError("x"), ParseError("x"), AnalysisError("x"),
                    SolverError("x"), BudgetExceeded("x"),
                    InjectedFault(point="propagate")):
            with pytest.raises(ReproError):
                raise exc


class TestParseErrorPositions:
    def test_full_position(self):
        err = ParseError("unexpected token", line=3, column=7)
        assert str(err) == "3:7: unexpected token"
        assert err.pos == (3, 7)
        assert err.raw_message == "unexpected token"

    def test_column_without_line_is_kept(self):
        # Regression: the old formatting dropped the column whenever
        # line == 0, losing the position for single-line input.
        err = ParseError("bad char", line=0, column=12)
        assert str(err) == "0:12: bad char"
        assert err.pos == (0, 12)

    def test_no_position_means_no_prefix(self):
        err = ParseError("something broke")
        assert str(err) == "something broke"
        assert err.pos == (0, 0)
        assert err.raw_message == "something broke"

    def test_raw_message_never_double_prefixes(self):
        err = ParseError("msg", line=2, column=4)
        assert err.raw_message == "msg"
        assert str(ParseError(err.raw_message, 2, 4)) == str(err)


class TestBudgetExceeded:
    def test_resource_fields(self):
        err = BudgetExceeded("out of steps", resource="steps", limit=10, used=11)
        assert (err.resource, err.limit, err.used) == ("steps", 10, 11)
        assert err.stage is None and err.partial_result is None

    def test_attach_first_writer_wins(self):
        err = BudgetExceeded("x")
        err.attach(stage="vsfs", stats="inner-stats", partial_result="inner")
        err.attach(stage="outer", stats="outer-stats", partial_result="outer")
        assert err.stage == "vsfs"
        assert err.stats == "inner-stats"
        assert err.partial_result == "inner"

    def test_attach_returns_self_for_reraise(self):
        err = BudgetExceeded("x")
        assert err.attach(stage="sfs") is err


class TestInjectedFault:
    def test_carries_stage_context(self):
        err = InjectedFault(point="otf_edge", stage="vsfs", hit=3)
        assert (err.point, err.stage, err.hit) == ("otf_edge", "vsfs", 3)
        assert "otf_edge" in str(err) and "hit #3" in str(err) and "vsfs" in str(err)

    def test_unknown_stage_rendering(self):
        assert "unknown" in str(InjectedFault(point="propagate", hit=1))


# --------------------------------------------------------------------------
# Public raise-site sweep: the library's public layers may only raise typed
# ReproError subclasses (plus NotImplementedError for abstract hooks and
# AssertionError for genuinely unreachable code).  Internal data structures
# (datastructs/, ir/ builders) may raise ValueError/KeyError for programming
# errors, per the errors module docstring, so they are not swept.

PUBLIC_LAYERS = (
    "frontend",
    "ir/parser.py",
    "runtime",
    "solvers",
    "core",
    "analysis",
    "pipeline.py",
    "cli.py",
    "store",
    "batch.py",
)

ALLOWED_RAISES = {
    "ReproError", "IRError", "ParseError", "AnalysisError", "SolverError",
    "BudgetExceeded", "InjectedFault", "CheckpointError",
    "NotImplementedError", "AssertionError",
}


def _public_sources():
    root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    for layer in PUBLIC_LAYERS:
        path = root / layer
        if path.is_file():
            yield path
        else:
            yield from sorted(path.rglob("*.py"))


def _raise_sites(path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            func = exc.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            yield node.lineno, name
        # bare `raise exc_variable` re-raises are fine: the original was typed


@pytest.mark.parametrize("path", list(_public_sources()),
                         ids=lambda p: "/".join(p.parts[-2:]))
def test_public_raise_sites_are_typed(path):
    offending = [
        (lineno, name) for lineno, name in _raise_sites(path)
        if name not in ALLOWED_RAISES
    ]
    assert not offending, (
        f"{path} raises non-ReproError exception(s) at {offending}; "
        f"public layers must raise typed errors from repro.errors"
    )
