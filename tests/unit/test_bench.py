"""Unit tests for the benchmark harness modules."""

import math

import pytest

from repro.bench.metrics import measure_analysis
from repro.bench.tables import format_table2, format_table3, geometric_mean
from repro.bench.runner import run_suite_program, write_results_json
from repro.bench.workloads import (
    SUITE,
    WorkloadConfig,
    generate_program,
    generate_source,
    suite_program,
    suite_source_loc,
)
from repro.frontend import compile_c
from repro.ir.verifier import verify_module


class TestWorkloadGenerator:
    def test_deterministic(self):
        config = WorkloadConfig(seed=5)
        assert generate_source(config) == generate_source(config)

    def test_different_seeds_differ(self):
        a = generate_source(WorkloadConfig(seed=1))
        b = generate_source(WorkloadConfig(seed=2))
        assert a != b

    def test_generated_source_compiles_and_verifies(self):
        module = generate_program(WorkloadConfig(seed=11, num_functions=6))
        verify_module(module, ssa=True)

    @pytest.mark.parametrize("seed", range(20, 30))
    def test_many_seeds_compile(self, seed):
        config = WorkloadConfig(seed=seed, num_functions=4, stmts_per_function=6)
        module = generate_program(config)
        assert "main" in module.functions

    def test_indirect_rate_zero_means_no_fnptr_calls(self):
        from repro.ir.instructions import CallInst

        config = WorkloadConfig(seed=3, indirect_call_rate=0.0, num_handlers=0)
        module = generate_program(config)
        indirect = [i for f in module.functions.values() for i in f.instructions()
                    if isinstance(i, CallInst) and i.is_indirect()]
        assert indirect == []

    def test_size_knobs_scale_output(self):
        small = generate_source(WorkloadConfig(seed=1, num_functions=3,
                                               stmts_per_function=4))
        large = generate_source(WorkloadConfig(seed=1, num_functions=12,
                                               stmts_per_function=16))
        assert large.count("\n") > 2 * small.count("\n")

    def test_suite_has_fifteen_programs(self):
        assert len(SUITE) == 15
        assert list(SUITE)[0] == "du" and list(SUITE)[-1] == "hyriseConsole"

    def test_suite_sizes_grow(self):
        locs = [suite_source_loc(name) for name in SUITE]
        assert locs[-1] > 3 * locs[0]

    def test_suite_program_cached(self):
        assert suite_program("du") is suite_program("du")
        assert suite_program("du", cached=False) is not suite_program("du")


class TestMetrics:
    def test_measure_returns_stats(self):
        from repro.pipeline import AnalysisPipeline

        module = compile_c("int g; int main() { g = 1; return g; }")
        pipeline = AnalysisPipeline(module)
        pipeline.memssa()
        measurement = measure_analysis("vsfs", lambda: pipeline.vsfs())
        assert measurement.analysis == "vsfs"
        assert measurement.wall_time > 0
        assert measurement.peak_bytes > 0
        assert measurement.stats is not None
        assert measurement.stored_ptsets == measurement.stats.stored_ptsets

    def test_measure_without_stats(self):
        measurement = measure_analysis("misc", lambda: 42)
        assert measurement.stats is None
        assert measurement.propagations == 0


class TestTables:
    def test_geometric_mean(self):
        assert math.isclose(geometric_mean([2, 8]), 4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -1.0]) == 0.0  # non-positive ignored

    def test_tables_render(self):
        result = run_suite_program("du")
        table2 = format_table2([result])
        table3 = format_table3([result])
        assert "du" in table2 and "LOC" in table2
        assert "Time diff." in table3 and "Average" in table3

    def test_runner_checks_equivalence(self):
        result = run_suite_program("du")
        assert result.precision_identical()
        assert result.svfg_stats.num_nodes > 0
        assert result.sfs.wall_time > 0
        assert result.time_speedup() > 0
        assert result.propagation_ratio() > 1.0

    def test_table3_shows_dedup_stats(self):
        result = run_suite_program("du")
        table3 = format_table3([result])
        assert "SFS uniq/ref" in table3 and "U-cache hit" in table3
        stats = result.sfs.stats
        assert f"{stats.unique_ptsets}/{stats.stored_ptsets}" in table3


class TestJSONExport:
    def test_write_results_json(self, tmp_path):
        import json

        result = run_suite_program("du")
        path = tmp_path / "BENCH_table3.json"
        write_results_json([result], str(path))
        payload = json.loads(path.read_text())
        assert payload["programs"] == ["du"]
        (record,) = payload["suite"]
        assert record["name"] == "du"
        assert record["precision_identical"] is True
        for solver in ("sfs", "vsfs"):
            stats = record[solver]
            assert stats["wall_time_s"] > 0
            assert stats["propagations"] > 0
            assert stats["unions"] > 0
            assert stats["delta_kernel"] is True and stats["ptrepo_enabled"] is True
            # The repository's whole point: far fewer unique sets than
            # references to them, almost all unions served from a memo —
            # the batch memo intercepts repeat (entry, delta) applications
            # before they ever reach the pairwise union cache, so the two
            # layers are judged together.
            assert 0 < stats["unique_ptsets"] < stats["stored_ptsets"]
            assert stats["dedup_ratio"] > 1.0
            memo_hits = stats["union_cache_hits"] + stats["batch_memo_hits"]
            memo_calls = (memo_hits + stats["union_cache_misses"]
                          + stats["batch_memo_misses"])
            assert memo_calls > 0 and memo_hits / memo_calls > 0.5
            assert stats["mde_batch"] is True
            assert stats["batch_memo_hits"] > 0
            assert stats["interner_entries"] > 0
            assert stats["dedup_resident_bytes"] > 0
        assert record["ratios"]["propagation_ratio"] > 1.0

    def test_runner_main_writes_json(self, tmp_path, capsys):
        import json

        from repro.bench.runner import main

        path = tmp_path / "out.json"
        assert main(["--json", str(path), "du"]) == 0
        out = capsys.readouterr().out
        assert "Time diff." in out and str(path) in out
        assert json.loads(path.read_text())["programs"] == ["du"]

    def test_runner_main_rejects_unknown_program(self, capsys):
        from repro.bench.runner import main

        with pytest.raises(SystemExit):
            main(["not-a-program"])

    def test_runner_main_catches_json_eating_program_name(self, capsys):
        """``--json du`` binds "du" as the output PATH (argparse nargs='?');
        the runner must reject it instead of silently running all 15."""
        from repro.bench.runner import main

        with pytest.raises(SystemExit):
            main(["--json", "du"])
        assert "--json=PATH" in capsys.readouterr().err


class TestGovernedBenchRuns:
    def test_measurements_carry_run_reports(self):
        result = run_suite_program("du")
        for meas in (result.sfs, result.vsfs):
            assert meas.report is not None
            assert not meas.report.degraded
            assert meas.report.precision_level == meas.analysis
        assert result.precision_identical()

    def test_step_budget_degrades_to_floor(self):
        from repro.runtime import Budget

        result = run_suite_program("du", budget=Budget(max_steps=1),
                                   check_equivalence=False)
        for meas in (result.sfs, result.vsfs):
            assert meas.report.degraded
            assert meas.report.precision_level == "andersen"

    def test_json_embeds_run_reports(self, tmp_path):
        import json

        result = run_suite_program("du")
        path = tmp_path / "bench.json"
        write_results_json([result], str(path))
        payload = json.loads(path.read_text())
        for label in ("sfs", "vsfs"):
            report = payload["suite"][0][label]["run_report"]
            assert report["requested"] == label
            assert report["degraded"] is False
            assert report["attempts"][0]["outcome"] == "completed"

    def test_runner_main_budget_flag_notes_degradation(self, capsys):
        from repro.bench.runner import main

        assert main(["du", "--max-steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "NOTE: du: sfs degraded to andersen" in out
        assert "NOTE: du: vsfs degraded to andersen" in out
