"""Unit tests for the sharded-parallel building blocks (repro.parallel).

Covers the pieces below the driver: SolverStats merging, SVFG
partitioning (SCC condensation → topological shards → workers), the
frontier id-delta codec with its peer mirrors, and the shard-staged
worklists — each small enough to exercise exhaustively without spinning
up workers.
"""

import pytest

from repro.frontend import compile_c
from repro.parallel.frontier import FrontierBatch, FrontierEncoder, PeerMirrors
from repro.parallel.partition import build_dependency_graph, partition_svfg
from repro.parallel.shard import OwnedDeltaWorkList, OwnedFIFOWorkList
from repro.pipeline import AnalysisPipeline
from repro.solvers.base import SolverStats


# --------------------------------------------------------------------------
# SolverStats.merge
# --------------------------------------------------------------------------

class TestSolverStatsMerge:
    def test_additive_fields_sum(self):
        a = SolverStats(analysis="sfs", solve_time=1.0, nodes_processed=10,
                        propagations=5, unions=3, delta_kernel=True,
                        ptrepo_enabled=True)
        b = SolverStats(analysis="sfs", solve_time=0.5, nodes_processed=7,
                        propagations=2, unions=1, delta_kernel=True,
                        ptrepo_enabled=True)
        merged = SolverStats.merge([a, b])
        assert merged.analysis == "sfs"
        assert merged.solve_time == pytest.approx(1.5)
        assert merged.nodes_processed == 17
        assert merged.propagations == 7
        assert merged.unions == 4
        assert merged.delta_kernel and merged.ptrepo_enabled

    def test_every_additive_field_is_summed(self):
        parts = []
        for scale in (1, 10):
            stats = SolverStats()
            for name in SolverStats.ADDITIVE_FIELDS:
                setattr(stats, name, scale if "time" not in name
                        else float(scale))
            parts.append(stats)
        merged = SolverStats.merge(parts)
        for name in SolverStats.ADDITIVE_FIELDS:
            assert getattr(merged, name) == 11, name

    def test_gauges_take_max_not_sum(self):
        # Workers converge on the *same* global call graph and share the
        # top-level table; summing would multiply shared state by the
        # worker count.
        a = SolverStats(top_level_bits=40, callgraph_edges=7)
        b = SolverStats(top_level_bits=38, callgraph_edges=7)
        merged = SolverStats.merge([a, b])
        assert merged.top_level_bits == 40
        assert merged.callgraph_edges == 7

    def test_ablation_flags_and_of_parts(self):
        a = SolverStats(delta_kernel=True, ptrepo_enabled=False)
        b = SolverStats(delta_kernel=False, ptrepo_enabled=True)
        merged = SolverStats.merge([a, b])
        assert not merged.delta_kernel
        assert not merged.ptrepo_enabled

    def test_empty_merge_is_zero(self):
        merged = SolverStats.merge([])
        assert merged.nodes_processed == 0
        assert merged.solve_time == 0.0

    def test_own_steps_excludes_resumed_work(self):
        # The double-counting trap: a resumed attempt's nodes_processed
        # includes everything replayed from the checkpoint, so the work
        # this attempt did itself is own_steps(), not nodes_processed.
        resumed = SolverStats(nodes_processed=100, resumed_steps=60)
        assert resumed.own_steps() == 40

    def test_merge_preserves_own_steps_decomposition(self):
        a = SolverStats(nodes_processed=100, resumed_steps=60)
        b = SolverStats(nodes_processed=30)
        merged = SolverStats.merge([a, b])
        assert merged.nodes_processed == 130
        assert merged.resumed_steps == 60
        assert merged.own_steps() == 70  # 40 + 30


# --------------------------------------------------------------------------
# Partitioning
# --------------------------------------------------------------------------

PARTITION_SOURCE = """
    int a; int b; int *p; int *q;
    int pick(int which) { if (which) { return a; } return b; }
    int flow() { p = &a; q = p; *q = 1; return *p; }
    int main() { int r; r = pick(1); r = flow(); return r; }
"""


@pytest.fixture(scope="module")
def svfg():
    pipeline = AnalysisPipeline(compile_c(PARTITION_SOURCE))
    return pipeline.svfg()


class TestPartition:
    @pytest.mark.parametrize("jobs", [1, 2, 3, 4])
    def test_shards_cover_nodes_exactly_once(self, svfg, jobs):
        part = partition_svfg(svfg, jobs)
        seen = [node for shard in part.shards for node in shard]
        assert sorted(seen) == list(range(len(svfg.nodes)))
        for sid, members in enumerate(part.shards):
            for node in members:
                assert part.shard_of[node] == sid

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_owner_monotone_over_shards(self, svfg, jobs):
        # Workers take contiguous shard ranges, so ownership is monotone
        # along the condensation's topological order.
        part = partition_svfg(svfg, jobs)
        owners = [part.owner_of[part.shards[sid][0]]
                  for sid in range(len(part.shards))]
        assert owners == sorted(owners)

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_worker_shards_partition_the_shard_range(self, svfg, jobs):
        part = partition_svfg(svfg, jobs)
        assert len(part.worker_shards) == jobs
        expected_start = 0
        for worker, (start, end) in enumerate(part.worker_shards):
            assert start == expected_start
            assert end >= start
            expected_start = end
            for sid in range(start, end):
                for node in part.shards[sid]:
                    assert part.owner_of[node] == worker
        assert expected_start == len(part.shards)

    def test_every_worker_owns_something(self, svfg):
        part = partition_svfg(svfg, 3)
        sizes = part.worker_sizes()
        assert len(sizes) == 3
        assert all(size > 0 for size in sizes)
        assert sum(sizes) == len(svfg.nodes)

    def test_owned_mask_matches_owner_of(self, svfg):
        part = partition_svfg(svfg, 2)
        for worker in range(2):
            mask = part.owned_mask(worker)
            assert all(mask[n] == (part.owner_of[n] == worker)
                       for n in range(len(svfg.nodes)))

    def test_topo_order_respects_dependency_dag(self, svfg):
        # topo_of is the SCC component's topological index: every
        # dependency edge goes to an equal-or-later component.
        part = partition_svfg(svfg, 2)
        graph = build_dependency_graph(svfg)
        for src in graph.nodes():
            for dst in graph.successors(src):
                assert part.topo_of[src] <= part.topo_of[dst]

    def test_deterministic_for_same_svfg(self, svfg):
        first = partition_svfg(svfg, 2)
        second = partition_svfg(svfg, 2)
        assert first.shard_of == second.shard_of
        assert first.owner_of == second.owner_of
        assert first.shards == second.shards

    def test_empty_graph(self):
        pipeline = AnalysisPipeline(compile_c("int main() { return 0; }"))
        part = partition_svfg(pipeline.svfg(), 2)
        assert part.num_workers == 2
        assert len(part.worker_shards) == 2


# --------------------------------------------------------------------------
# Frontier codec
# --------------------------------------------------------------------------

class TestFrontierCodec:
    def test_round_trip_resolves_masks(self):
        enc = FrontierEncoder(sender=0)
        mirrors = PeerMirrors()
        batch = enc.encode(0, {3: 0b101, 7: 0b11}, {(2, 1): 0b1000},
                           [(9, "callee")])
        mirrors.import_batch(batch)
        assert mirrors.resolve(batch, batch.vars[3]) == 0b101
        assert mirrors.resolve(batch, batch.vars[7]) == 0b11
        assert mirrors.resolve(batch, batch.mem[(2, 1)]) == 0b1000
        assert batch.calls == [(9, "callee")]

    def test_repeated_set_crosses_wire_once(self):
        enc = FrontierEncoder(sender=0)
        mirrors = PeerMirrors()
        first = enc.encode(0, {1: 0b101}, {}, [])
        second = enc.encode(1, {2: 0b101, 3: 0b101}, {}, [])
        mirrors.import_batch(first)
        mirrors.import_batch(second)
        # The second batch references an already-shipped set: no new rows.
        assert second.table == []
        assert mirrors.resolve(second, second.vars[2]) == 0b101
        assert mirrors.resolve(second, second.vars[3]) == 0b101

    def test_out_of_order_import_raises(self):
        enc = FrontierEncoder(sender=0)
        mirrors = PeerMirrors()
        enc.encode(0, {1: 0b1}, {}, [])  # first batch never delivered
        later = enc.encode(1, {2: 0b10}, {}, [])
        with pytest.raises(ValueError, match="out of sync"):
            mirrors.import_batch(later)

    def test_stale_redelivery_is_skipped(self):
        # After a seal restore the driver re-delivers retained batches;
        # a mirror that already holds their rows must skip, not re-append.
        enc = FrontierEncoder(sender=0)
        mirrors = PeerMirrors()
        batch = enc.encode(0, {1: 0b11}, {}, [])
        mirrors.import_batch(batch)
        size_before = mirrors.mirror(0).size
        mirrors.import_batch(batch)  # re-delivery
        assert mirrors.mirror(0).size == size_before
        assert mirrors.resolve(batch, batch.vars[1]) == 0b11

    def test_incarnation_bump_resets_mirror(self):
        old = FrontierEncoder(sender=0, incarnation=0)
        mirrors = PeerMirrors()
        mirrors.import_batch(old.encode(0, {1: 0b1, 2: 0b10}, {}, []))
        # Worker 0 is revived: fresh wire repo, bumped incarnation.
        revived = FrontierEncoder(sender=0, incarnation=1)
        batch = revived.encode(1, {1: 0b100}, {}, [])
        mirrors.import_batch(batch)
        assert mirrors.resolve(batch, batch.vars[1]) == 0b100
        # The mirror was rebuilt from scratch for the new incarnation.
        assert mirrors.mirror(0).size == 2  # empty set + 0b100

    def test_seal_restore_round_trip(self):
        enc = FrontierEncoder(sender=1)
        mirrors = PeerMirrors()
        batch = enc.encode(0, {4: 0b1101}, {}, [])
        mirrors.import_batch(batch)
        restored = PeerMirrors()
        restored.restore(mirrors.seal())
        assert restored.resolve(batch, batch.vars[4]) == 0b1101
        # And the restored mirror keeps accepting the stream in order.
        follow = enc.encode(1, {5: 0b10}, {}, [])
        restored.import_batch(follow)
        assert restored.resolve(follow, follow.vars[5]) == 0b10

    def test_empty_batch_detection(self):
        enc = FrontierEncoder(sender=0)
        batch = enc.encode(0, {}, {}, [])
        assert batch.is_empty()
        assert batch.payload_entries() == 0
        full = enc.encode(1, {1: 0b1}, {}, [(2, "f")])
        assert not full.is_empty()
        assert full.payload_entries() == 2


# --------------------------------------------------------------------------
# Shard-staged worklists
# --------------------------------------------------------------------------

def _layout():
    """Six nodes, three shards of two; the worker owns shards 0-1."""
    owned = [True, True, True, True, False, False]
    shard_of = [0, 0, 1, 1, 2, 2]
    return owned, shard_of, 3


class TestOwnedWorklists:
    @pytest.mark.parametrize("cls", [OwnedDeltaWorkList, OwnedFIFOWorkList])
    def test_unowned_pushes_dropped(self, cls):
        owned, shard_of, num = _layout()
        wl = cls(owned, shard_of, num)
        assert not wl.push(4)
        assert not wl.push(5)
        assert len(wl) == 0 and not wl

    @pytest.mark.parametrize("cls", [OwnedDeltaWorkList, OwnedFIFOWorkList])
    def test_pop_is_shard_staged_fifo(self, cls):
        owned, shard_of, num = _layout()
        wl = cls(owned, shard_of, num)
        for node in (3, 1, 2, 0):  # interleave shards, reverse order
            assert wl.push(node)
        # Earliest shard first; FIFO within a shard.
        assert [wl.pop() for _ in range(4)] == [1, 0, 3, 2]

    @pytest.mark.parametrize("cls", [OwnedDeltaWorkList, OwnedFIFOWorkList])
    def test_push_during_drain_reactivates_earlier_shard(self, cls):
        owned, shard_of, num = _layout()
        wl = cls(owned, shard_of, num)
        wl.push(2)
        assert wl.pop() == 2
        wl.push(0)  # upstream shard becomes non-empty again
        wl.push(3)
        assert wl.pop() == 0  # earlier shard wins over the pending 3

    @pytest.mark.parametrize("cls", [OwnedDeltaWorkList, OwnedFIFOWorkList])
    def test_duplicate_push_is_noop(self, cls):
        owned, shard_of, num = _layout()
        wl = cls(owned, shard_of, num)
        assert wl.push(1)
        assert not wl.push(1)
        assert len(wl) == 1
        assert wl.pop() == 1
        assert not wl

    def test_delta_worklist_merges_dirty_bits(self):
        owned, shard_of, num = _layout()
        wl = OwnedDeltaWorkList(owned, shard_of, num)
        assert wl.push_delta(2, 7, 0b01)
        assert not wl.push_delta(2, 7, 0b10)  # merged, not re-queued
        node, dirty = wl.pop_with_dirty()
        assert node == 2
        assert dirty == {7: 0b11}

    def test_delta_worklist_drops_unowned_deltas(self):
        owned, shard_of, num = _layout()
        wl = OwnedDeltaWorkList(owned, shard_of, num)
        assert not wl.push_delta(5, 1, 0b1)
        assert len(wl) == 0

    def test_full_push_supersedes_dirty(self):
        owned, shard_of, num = _layout()
        wl = OwnedDeltaWorkList(owned, shard_of, num)
        wl.push_delta(0, 3, 0b1)
        wl.push(0)  # full reprocess requested
        node, dirty = wl.pop_with_dirty()
        assert node == 0
        assert dirty is None  # full visit, not a delta visit

    def test_snapshot_restore_preserves_order_and_dirt(self):
        owned, shard_of, num = _layout()
        wl = OwnedDeltaWorkList(owned, shard_of, num)
        wl.push(3)
        wl.push(0)
        wl.push_delta(2, 5, 0b110)
        state = wl.snapshot()
        clone = OwnedDeltaWorkList(owned, shard_of, num)
        clone.restore(state)
        assert len(clone) == 3
        drained = []
        while clone:
            drained.append(clone.pop_with_dirty())
        # Shard 0 first; FIFO within shard 1 (3 was pushed before 2).
        assert [node for node, _ in drained] == [0, 3, 2]
        assert dict((n, d) for n, d in drained)[2] == {5: 0b110}
