"""Unit tests for mod/ref analysis and memory SSA construction."""

import pytest

from repro.analysis.andersen import run_andersen
from repro.analysis.modref import compute_modref
from repro.datastructs.bitset import iter_bits
from repro.frontend import compile_c
from repro.ir import CallInst, LoadInst, StoreInst, parse_module
from repro.memssa import build_memssa
from repro.passes import prepare_module


def setup(src, language="c"):
    if language == "c":
        module = compile_c(src)
    else:
        module = parse_module(src)
        prepare_module(module, promote=False)
    andersen = run_andersen(module)
    modref = compute_modref(module, andersen)
    return module, andersen, modref


def obj_names(module, mask):
    return {module.objects[oid].name for oid in iter_bits(mask)}


class TestModRef:
    SRC = """
        int g;
        void writer() { g = 1; }
        int reader() { return g; }
        void outer() { writer(); }
        int main() { outer(); return reader(); }
    """

    def test_local_effects(self):
        module, __, modref = setup(self.SRC)
        writer = module.functions["writer"]
        reader = module.functions["reader"]
        assert obj_names(module, modref.mod[writer]) == {"g"}
        assert obj_names(module, modref.mod[reader]) == set()
        assert obj_names(module, modref.ref[reader]) == {"g"}

    def test_transitive_propagation(self):
        module, __, modref = setup(self.SRC)
        outer = module.functions["outer"]
        main = module.functions["main"]
        assert obj_names(module, modref.mod[outer]) == {"g"}
        assert obj_names(module, modref.mod[main]) == {"g"}
        assert "g" in obj_names(module, modref.ref[main])

    def test_in_objs_include_mod(self):
        # A store-only callee still needs the object flowing in (weak
        # updates observe the old value).
        module, __, modref = setup(self.SRC)
        writer = module.functions["writer"]
        assert obj_names(module, modref.in_objs(writer)) == {"g"}

    def test_out_objs_only_mod(self):
        module, __, modref = setup(self.SRC)
        reader = module.functions["reader"]
        assert modref.out_objs(reader) == 0

    def test_callsite_views(self):
        module, __, modref = setup(self.SRC)
        main = module.functions["main"]
        calls = [i for i in main.instructions() if isinstance(i, CallInst)]
        by_callee = {c.callee.name: c for c in calls}
        assert obj_names(module, modref.call_chi_objs(by_callee["outer"])) == {"g"}
        assert obj_names(module, modref.call_mu_objs(by_callee["reader"])) == {"g"}

    def test_recursive_cycle_converges(self):
        module, __, modref = setup("""
            int g;
            void even(int n) { g = n; if (n) { odd(n - 1); } }
            void odd(int n) { if (n) { even(n - 1); } }
            int main() { even(4); return g; }
        """)
        odd = module.functions["odd"]
        assert "g" in obj_names(module, modref.mod[odd])  # via even


class TestMemSSA:
    def test_load_mu_and_store_chi(self):
        module, andersen, modref = setup("""
            int g;
            int main() { g = 1; return g; }
        """)
        memssa = build_memssa(module, andersen, modref)
        main = module.functions["main"]
        stores = [i for i in main.instructions() if isinstance(i, StoreInst)]
        loads = [i for i in main.instructions() if isinstance(i, LoadInst)]
        assert len(memssa.store_chis[stores[0]]) == 1
        assert memssa.store_chis[stores[0]][0].obj.name == "g"
        assert memssa.load_mus[loads[0]][0].obj.name == "g"

    def test_versions_link_def_to_use(self):
        module, andersen, modref = setup("""
            int g;
            int main() { g = 1; return g; }
        """)
        memssa = build_memssa(module, andersen, modref)
        main = module.functions["main"]
        store = next(i for i in main.instructions() if isinstance(i, StoreInst))
        load = next(i for i in main.instructions() if isinstance(i, LoadInst))
        chi = memssa.store_chis[store][0]
        mu = memssa.load_mus[load][0]
        assert mu.ver == chi.new_ver  # straight line: load sees the store

    def test_memphi_at_join(self):
        module, andersen, modref = setup("""
            int g;
            int main(int c) {
                if (c) { g = 1; } else { g = 2; }
                return g;
            }
        """)
        memssa = build_memssa(module, andersen, modref)
        main = module.functions["main"]
        phis = [p for p in memssa.memphis[main] if p.obj.name == "g"]
        assert len(phis) == 1
        assert len(phis[0].incomings) == 2
        load = next(i for i in main.instructions() if isinstance(i, LoadInst))
        assert memssa.load_mus[load][0].ver == phis[0].new_ver

    def test_no_memphi_for_single_def(self):
        module, andersen, modref = setup("""
            int g;
            int main() { g = 1; return g; }
        """)
        memssa = build_memssa(module, andersen, modref)
        assert memssa.num_memphis() == 0

    def test_entry_chi_and_exit_mu(self):
        module, andersen, modref = setup("""
            int g;
            void writer() { g = 1; }
            int main() { writer(); return g; }
        """)
        memssa = build_memssa(module, andersen, modref)
        writer = module.functions["writer"]
        entry_objs = {chi.obj.name for chi in memssa.entry_chis[writer]}
        exit_objs = {mu.obj.name for mu in memssa.exit_mus[writer]}
        assert "g" in entry_objs and "g" in exit_objs

    def test_call_annotations(self):
        module, andersen, modref = setup("""
            int g;
            void writer() { g = 1; }
            int main() { writer(); return g; }
        """)
        memssa = build_memssa(module, andersen, modref)
        main = module.functions["main"]
        call = next(i for i in main.instructions() if isinstance(i, CallInst))
        assert {c.obj.name for c in memssa.call_chis[call]} == {"g"}
        assert {m.obj.name for m in memssa.call_mus[call]} == {"g"}
        # the load after the call consumes the call's chi version
        load = next(i for i in main.instructions() if isinstance(i, LoadInst))
        assert memssa.load_mus[load][0].ver == memssa.call_chis[call][0].new_ver

    def test_loop_body_store_gets_memphi_at_header(self):
        module, andersen, modref = setup("""
            int g;
            int main() {
                int i;
                for (i = 0; i < 3; i = i + 1) { g = i; }
                return g;
            }
        """)
        memssa = build_memssa(module, andersen, modref)
        main = module.functions["main"]
        phis = [p for p in memssa.memphis[main] if p.obj.name == "g"]
        assert phis and any("for.cond" in p.block.name for p in phis)

    def test_aliased_stores_annotate_both_objects(self):
        module, andersen, modref = setup("""
            int g1; int g2;
            int main(int c) {
                int *p;
                if (c) { p = &g1; } else { p = &g2; }
                *p = 9;
                return g1 + g2;
            }
        """)
        memssa = build_memssa(module, andersen, modref)
        main = module.functions["main"]
        store = next(i for i in main.instructions() if isinstance(i, StoreInst))
        assert {c.obj.name for c in memssa.store_chis[store]} == {"g1", "g2"}

    def test_annotation_counts_shape(self):
        module, andersen, modref = setup("""
            int g;
            int main() { g = 1; return g; }
        """)
        memssa = build_memssa(module, andersen, modref)
        counts = memssa.annotation_counts()
        assert counts["store_chi"] >= 1 and counts["load_mu"] >= 1
