"""Unit tests for the extended mini-C syntax: break/continue, do-while,
compound assignment, increment/decrement."""

import pytest

from repro.errors import ParseError
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline


def observed(module, result, sink_name):
    param = module.functions[sink_name].params[0]
    return {obj.name for obj in result.points_to(param)}


def solve(src):
    module = compile_c(src)
    return module, AnalysisPipeline(module).vsfs()


class TestBreakContinue:
    def test_break_limits_flow(self):
        module, result = solve("""
            int *g; int x; int y;
            void sink_a(int *p) { }
            int main() {
                int i;
                for (i = 0; i < 10; i++) {
                    g = &x;
                    break;
                    g = &y;            // unreachable
                }
                sink_a(g);
                return 0;
            }
        """)
        assert observed(module, result, "sink_a") == {"x"}

    def test_continue_skips_rest_of_body(self):
        module, result = solve("""
            int *g; int x; int y;
            void sink_a(int *p) { }
            int main(int c) {
                int i;
                for (i = 0; i < 10; i++) {
                    g = &x;
                    if (c) { continue; }
                    g = &y;
                }
                sink_a(g);
                return 0;
            }
        """)
        assert observed(module, result, "sink_a") == {"x", "y"}

    def test_break_in_while(self):
        module, result = solve("""
            int *g; int x;
            void sink_a(int *p) { }
            int main() {
                while (1) {
                    g = &x;
                    break;
                }
                sink_a(g);
                return 0;
            }
        """)
        assert observed(module, result, "sink_a") == {"x"}

    def test_break_outside_loop_rejected(self):
        with pytest.raises(ParseError, match="break outside"):
            compile_c("int main() { break; return 0; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(ParseError, match="continue outside"):
            compile_c("int main() { continue; return 0; }")

    def test_nested_loops_break_innermost(self):
        module = compile_c("""
            int main() {
                int i; int j; int n; n = 0;
                for (i = 0; i < 3; i++) {
                    for (j = 0; j < 3; j++) {
                        if (j == 1) { break; }
                        n += 1;
                    }
                }
                return n;
            }
        """)
        assert "main" in module.functions  # compiles and verifies


class TestDoWhile:
    def test_body_always_entered(self):
        module, result = solve("""
            int *g; int x;
            void sink_a(int *p) { }
            int main() {
                int n; n = 0;
                do {
                    g = &x;
                    n++;
                } while (n < 3);
                sink_a(g);
                return 0;
            }
        """)
        assert observed(module, result, "sink_a") == {"x"}

    def test_do_while_block_names(self):
        module = compile_c("""
            int main() { int n; n = 0; do { n++; } while (n < 2); return n; }
        """)
        names = [b.name for b in module.functions["main"].blocks]
        assert any("do.body" in n for n in names)
        assert any("do.cond" in n for n in names)

    def test_continue_in_do_while_goes_to_condition(self):
        module = compile_c("""
            int main(int c) {
                int n; n = 0;
                do { if (c) { continue; } n++; } while (n < 2);
                return n;
            }
        """)
        assert "main" in module.functions


class TestCompoundOpsAndIncDec:
    def test_compound_assignment(self):
        module = compile_c("""
            int main() { int n; n = 1; n += 2; n *= 3; n -= 1; n /= 2; return n; }
        """)
        assert "main" in module.functions

    def test_prefix_and_postfix_increment(self):
        module = compile_c("""
            int main() { int i; i = 0; ++i; i++; --i; i--; return i; }
        """)
        assert "main" in module.functions

    def test_increment_in_for_header(self):
        module, result = solve("""
            struct node { int v; struct node *next; };
            struct node *head;
            void sink_a(struct node *p) { }
            int main() {
                int i;
                for (i = 0; i < 4; i++) {
                    struct node *n = (struct node*)malloc(sizeof(struct node));
                    n->next = head;
                    head = n;
                }
                sink_a(head);
                return 0;
            }
        """)
        assert observed(module, result, "sink_a") != set()

    def test_compound_on_pointer_field(self):
        module = compile_c("""
            struct ctr { int hits; };
            struct ctr g;
            int main() { g.hits += 1; return g.hits; }
        """)
        assert "main" in module.functions


class TestSolverAgreementOnNewSyntax:
    def test_sfs_equals_vsfs(self):
        module = compile_c("""
            int *g; int x; int y;
            int main(int c) {
                int i;
                do {
                    g = &x;
                    if (c) { break; }
                    g = &y;
                } while (c);
                for (i = 0; i < 3; i += 1) {
                    if (i == 1) { continue; }
                    g = &x;
                }
                return 0;
            }
        """)
        pipeline = AnalysisPipeline(module)
        assert pipeline.sfs().snapshot() == pipeline.vsfs().snapshot()
