"""Unit tests for the client analyses (aliases, null-deref, dead stores,
slicing)."""

import pytest

from repro.clients.aliases import AliasOracle
from repro.clients.deadstore import find_dead_stores
from repro.clients.nullderef import find_null_derefs
from repro.clients.slicer import ValueFlowSlicer
from repro.frontend import compile_c
from repro.ir.instructions import LoadInst, StoreInst
from repro.pipeline import AnalysisPipeline


class TestAliasOracle:
    SRC = """
        int x; int y;
        void sink_p(int *v) { }
        void sink_q(int *v) { }
        void sink_r(int *v) { }
        int main(int c) {
            int *p; int *q; int *r;
            p = &x;
            if (c) { q = &x; } else { q = &y; }
            r = &y;
            sink_p(p); sink_q(q); sink_r(r);
            return 0;
        }
    """

    @pytest.fixture(scope="class")
    def setup(self):
        module = compile_c(self.SRC)
        result = AnalysisPipeline(module).vsfs()
        oracle = AliasOracle(module, result)
        params = {
            name: module.functions[name].params[0]
            for name in ("sink_p", "sink_q", "sink_r")
        }
        return module, oracle, params

    def test_may_alias(self, setup):
        __, oracle, params = setup
        assert oracle.may_alias(params["sink_p"], params["sink_q"])     # both may hit x
        assert oracle.may_alias(params["sink_q"], params["sink_r"])     # both may hit y
        assert not oracle.may_alias(params["sink_p"], params["sink_r"])

    def test_pointees(self, setup):
        __, oracle, params = setup
        assert {o.name for o in oracle.pointees(params["sink_q"])} == {"x", "y"}
        assert oracle.points_to_size(params["sink_q"]) == 2

    def test_pointers_to(self, setup):
        module, oracle, params = setup
        x = next(o for o in module.objects if o.name == "x")
        pointers = oracle.pointers_to(x)
        assert params["sink_p"] in pointers and params["sink_q"] in pointers
        assert params["sink_r"] not in pointers

    def test_alias_pairs(self, setup):
        __, oracle, params = setup
        pairs = oracle.alias_pairs(params.values())
        assert len(pairs) == 2

    def test_null_like_and_average(self, setup):
        module, oracle, params = setup
        assert not oracle.is_null_like(params["sink_p"])
        assert oracle.average_points_to_size() >= 1.0


class TestNullDeref:
    def test_use_before_init_flagged(self):
        module = compile_c("""
            int *g; int x;
            int main() {
                int v;
                v = *g;          // before any store to g
                g = &x;
                v = *g;          // fine
                return v;
            }
        """)
        pipeline = AnalysisPipeline(module)
        report = find_null_derefs(module, pipeline.vsfs(), pipeline.andersen())
        assert len(report) == 1
        assert report.warnings[0].kind == "load"
        assert not report.warnings[0].flagged_by_auxiliary
        assert len(report.flow_sensitive_only()) == 1

    def test_initialised_pointer_clean(self):
        module = compile_c("""
            int *g; int x;
            int main() { g = &x; return *g; }
        """)
        pipeline = AnalysisPipeline(module)
        report = find_null_derefs(module, pipeline.vsfs(), pipeline.andersen())
        assert len(report) == 0

    def test_unreached_function_skipped(self):
        module = compile_c("""
            int *g;
            int never_called() { return *g; }
            int main() { return 0; }
        """)
        pipeline = AnalysisPipeline(module)
        report = find_null_derefs(module, pipeline.vsfs(), pipeline.andersen())
        assert len(report) == 0

    def test_store_through_null_flagged(self):
        module = compile_c("""
            int *g;
            int main() { *g = 4; return 0; }
        """)
        pipeline = AnalysisPipeline(module)
        report = find_null_derefs(module, pipeline.vsfs(), pipeline.andersen())
        assert len(report) == 1
        assert report.warnings[0].kind == "store"
        # Andersen agrees here: g is never initialised anywhere.
        assert report.warnings[0].flagged_by_auxiliary

    def test_describe_mentions_function(self):
        module = compile_c("int *g; int main() { return *g; }")
        pipeline = AnalysisPipeline(module)
        report = find_null_derefs(module, pipeline.vsfs(), pipeline.andersen())
        assert "@main" in report.warnings[0].describe()


class TestDeadStores:
    def test_unread_global_store_is_dead(self):
        module = compile_c("""
            int *g; int *h; int x;
            void sink(int *p) { }
            int main() {
                g = &x;          // read below: observable
                h = &x;          // never read: dead
                sink(g);
                return 0;
            }
        """)
        pipeline = AnalysisPipeline(module)
        report = find_dead_stores(module, pipeline.svfg())
        dead_descriptions = [d.describe() for d in report]
        assert len(report) == 1
        assert "@h" in dead_descriptions[0] or "h" in dead_descriptions[0]
        assert report.observable >= 1

    def test_store_read_through_callee_is_observable(self):
        module = compile_c("""
            int *g; int x;
            int *reader() { return g; }
            void sink(int *p) { }
            int main() { g = &x; sink(reader()); return 0; }
        """)
        pipeline = AnalysisPipeline(module)
        report = find_dead_stores(module, pipeline.svfg())
        assert len(report) == 0

    def test_overwritten_then_read_both_observable(self):
        # Reachability-based deadness is conservative: the first store can
        # still flow (weak paths), so it is not reported.
        module = compile_c("""
            int *g; int x; int y;
            void sink(int *p) { }
            int main(int c) {
                g = &x;
                if (c) { g = &y; }
                sink(g);
                return 0;
            }
        """)
        pipeline = AnalysisPipeline(module)
        report = find_dead_stores(module, pipeline.svfg())
        assert len(report) == 0


class TestSlicer:
    SRC = """
        int *g; int *dead_g; int x; int y;
        void sink(int *p) { }
        int main() {
            g = &x;
            dead_g = &y;       // unrelated to the slice target
            sink(g);
            return 0;
        }
    """

    @pytest.fixture(scope="class")
    def setup(self):
        module = compile_c(self.SRC)
        pipeline = AnalysisPipeline(module)
        svfg = pipeline.svfg()
        return module, svfg, ValueFlowSlicer(svfg)

    def test_backward_slice_contains_def_chain(self, setup):
        module, svfg, slicer = setup
        main = module.functions["main"]
        sink_call = next(i for f in module.functions.values()
                         for i in f.instructions()
                         if getattr(i, "callee", None) is not None
                         and not i.is_indirect() and i.callee.name == "sink")
        insts = slicer.slice_instructions(slicer.backward_slice(sink_call))
        texts = [repr(i) for i in insts]
        assert any("load @g" in t for t in texts)
        assert any("store @g" in t for t in texts)
        assert not any("dead_g" in t and "store" in t for t in texts)

    def test_forward_slice_from_store(self, setup):
        module, svfg, slicer = setup
        main = module.functions["main"]
        store = next(i for i in main.instructions()
                     if isinstance(i, StoreInst) and getattr(i.ptr, "name", "") == "g")
        forward = slicer.forward_slice(store)
        insts = slicer.slice_instructions(forward)
        assert any(isinstance(i, LoadInst) for i in insts)

    def test_slice_of_unrelated_store_is_small(self, setup):
        module, svfg, slicer = setup
        main = module.functions["main"]
        dead_store = next(i for i in main.instructions()
                          if isinstance(i, StoreInst)
                          and getattr(i.ptr, "name", "") == "dead_g")
        forward = slicer.forward_slice(dead_store)
        insts = slicer.slice_instructions(forward)
        assert not any(isinstance(i, LoadInst) for i in insts)

    def test_describe_renders(self, setup):
        __, __svfg, slicer = setup
        text = slicer.describe(slicer.backward_slice(0))
        assert isinstance(text, str)

    def test_unknown_instruction_raises(self, setup):
        module, __, slicer = setup
        from repro.ir.instructions import RetInst

        foreign = RetInst()
        with pytest.raises(KeyError):
            slicer.backward_slice(foreign)
