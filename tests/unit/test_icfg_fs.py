"""Unit tests for the dense ICFG flow-sensitive baseline (§IV-A)."""

import pytest

from repro.frontend import compile_c
from repro.solvers.icfg_fs import run_icfg_fs


def observed(module, result, sink_name):
    param = module.functions[sink_name].params[0]
    return {obj.name for obj in result.points_to(param)}


class TestICFGSemantics:
    def test_flow_sensitive_ordering(self):
        module = compile_c("""
            int *g; int x; int y;
            void sink_a(int *p) { }
            void sink_b(int *p) { }
            int main() {
                g = &x;
                sink_a(g);
                g = &y;
                sink_b(g);
                return 0;
            }
        """)
        result = run_icfg_fs(module)
        assert observed(module, result, "sink_a") == {"x"}
        assert observed(module, result, "sink_b") == {"y"}

    def test_join_merges(self):
        module = compile_c("""
            int *g; int x; int y;
            void sink_a(int *p) { }
            int main(int c) {
                if (c) { g = &x; } else { g = &y; }
                sink_a(g);
                return 0;
            }
        """)
        result = run_icfg_fs(module)
        assert observed(module, result, "sink_a") == {"x", "y"}

    def test_loop_fixpoint(self):
        module = compile_c("""
            struct node { int v; struct node *next; };
            struct node *head;
            void sink_a(struct node *p) { }
            int main() {
                int i;
                for (i = 0; i < 3; i = i + 1) {
                    struct node *n = (struct node*)malloc(sizeof(struct node));
                    n->next = head;
                    head = n;
                }
                sink_a(head);
                return 0;
            }
        """)
        result = run_icfg_fs(module)
        assert observed(module, result, "sink_a") != set()

    def test_indirect_call_resolution(self):
        module = compile_c("""
            struct node { int v; };
            struct node *g;
            struct node *cb(struct node *a, struct node *b) { g = a; return b; }
            fnptr h;
            void sink_a(struct node *p) { }
            int main() {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                h = cb;
                struct node *r = h(n, n);
                sink_a(g);
                return 0;
            }
        """)
        result = run_icfg_fs(module)
        heap = next(o.name for o in module.objects if o.kind.value == "heap")
        assert observed(module, result, "sink_a") == {heap}
        assert result.callgraph.num_edges() >= 3

    def test_strong_update_in_dense_analysis(self):
        module = compile_c("""
            int *g; int x; int y;
            void sink_a(int *p) { }
            int main() {
                g = &x;
                g = &y;
                sink_a(g);
                return 0;
            }
        """)
        result = run_icfg_fs(module)
        assert observed(module, result, "sink_a") == {"y"}
        assert result.stats.strong_updates >= 1

    def test_stats_footprint_filled(self):
        # Note: g must hold a *pointer* for any points-to set to be stored.
        module = compile_c("int *g; int x; int main() { g = &x; int *a; a = g; return 0; }")
        result = run_icfg_fs(module)
        assert result.stats.stored_ptsets > 0
        assert result.stats.analysis == "icfg-fs"
