"""Property tests for the multi-level deduplication engine.

Two codec/soundness invariants hold for *any* mask population:

- arena round-trip: interning masks, flushing them to the arena, and
  reattaching through the mmap reader reproduces every mask bit-for-bit
  at the same repo id;
- batch-memo soundness: ``apply``/``gather_mask`` agree with the direct
  set-algebra computation whatever the interleaving of repeats, because
  keys are ids and equal ids mean equal masks.
"""

import os

from hypothesis import given, settings, strategies as st

from repro.datastructs.arena import PTArena
from repro.datastructs.mde import BatchMemo, MdeEngine
from repro.datastructs.ptrepo import PTRepo

masks = st.integers(min_value=0, max_value=(1 << 260) - 1)


@settings(max_examples=50, deadline=None)
@given(st.lists(masks, max_size=30))
def test_arena_round_trip_preserves_masks_and_ids(tmp_path_factory, pop):
    path = os.path.join(str(tmp_path_factory.mktemp("arena")), "arena.bin")
    engine = MdeEngine.open(path)
    ids = {mask: engine.repo.intern(mask) for mask in pop}
    engine.flush()
    engine.arena.close()

    reader = PTArena.attach(path)
    try:
        assert len(reader) == engine.repo.size
        for mask, ident in ids.items():
            assert reader.mask(ident) == mask
        # A warm engine re-interns to exactly the same ids.
        warm = MdeEngine.open(path, attach_only=True)
        for mask, ident in ids.items():
            assert warm.repo.get(mask) == ident
        if warm.arena is not None:
            warm.arena.close()
    finally:
        reader.close()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(masks, masks), min_size=1, max_size=40))
def test_batch_apply_is_sound(pairs):
    repo = PTRepo()
    memo = BatchMemo(repo)
    for entry_mask, delta_mask in pairs:
        entry = repo.intern(entry_mask)
        delta = repo.intern(delta_mask)
        new, added = memo.apply(entry, delta)
        assert repo.mask(new) == entry_mask | delta_mask
        assert repo.mask(added) == delta_mask & ~entry_mask
        # added's truthiness must mirror the raw kernel's ``added`` test.
        assert bool(added) == bool(delta_mask & ~entry_mask)
        # Hits return the identical ids.
        assert memo.apply(entry, delta) == (new, added)


@settings(max_examples=100, deadline=None)
@given(st.lists(masks, max_size=12), st.randoms())
def test_gather_mask_is_order_independent(pop, rng):
    repo = PTRepo()
    memo = BatchMemo(repo)
    ids = [repo.intern(mask) for mask in pop]
    expect = 0
    for mask in pop:
        expect |= mask
    assert memo.gather_mask(ids) == expect
    shuffled = list(ids)
    rng.shuffle(shuffled)
    assert memo.gather_mask(shuffled) == expect
