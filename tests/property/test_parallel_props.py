"""Property-based tests for the parallel substrate.

Two laws underpin the sharded driver's correctness:

- the PTRepo id-delta codec (``export_ids``/``import_ids``) replicates a
  sender's interning table positionally, so a mirror resolves every wire
  id to exactly the sender's mask — for *any* family of sets interned in
  *any* order, sliced into *any* batching of the stream;
- SCC condensation produces a topologically ordered DAG whose components
  cover every node exactly once — the ownership and scheduling layers
  (shards, workers, stagger) all assume it.
"""

from hypothesis import given, settings, strategies as st

from repro.datastructs.graph import DiGraph, condensation
from repro.datastructs.ptrepo import PTRepo

masks = st.integers(min_value=0, max_value=(1 << 64) - 1)
mask_lists = st.lists(masks, max_size=60)


class TestIdDeltaCodec:
    @given(mask_lists)
    def test_single_export_round_trips(self, family):
        repo = PTRepo()
        ids = [repo.intern(mask) for mask in family]
        mirror = PTRepo()
        rows, watermark = repo.export_ids(mirror.size)
        mirror.import_ids(rows, mirror.size)
        assert mirror.size == watermark == repo.size
        for mask, ident in zip(family, ids):
            assert mirror.mask(ident) == mask

    @given(st.lists(mask_lists, max_size=8))
    def test_batched_stream_round_trips(self, batches):
        # Interleave interning with exports: each batch ships only the
        # suffix appended since the previous watermark, and the mirror
        # replays the stream into an identical table.
        repo = PTRepo()
        mirror = PTRepo()
        watermark = repo.size
        ids = []
        for family in batches:
            ids.extend((mask, repo.intern(mask)) for mask in family)
            rows, watermark = repo.export_ids(watermark)
            mirror.import_ids(rows, mirror.size)
        assert mirror.snapshot() == repo.snapshot()
        for mask, ident in ids:
            assert mirror.mask(ident) == mask

    @given(mask_lists)
    def test_each_distinct_set_ships_once(self, family):
        repo = PTRepo()
        for mask in family:
            repo.intern(mask)
        rows, _ = repo.export_ids(1)  # everything after the empty set
        assert len(rows) == len(set(family) - {0})
        assert len(set(rows)) == len(rows)

    @given(mask_lists, mask_lists)
    def test_gap_in_stream_raises(self, first, second):
        repo = PTRepo()
        for mask in first:
            repo.intern(mask)
        skipped, watermark = repo.export_ids(1)
        if not skipped:
            return  # first batch shipped nothing: skipping it leaves no gap
        for mask in second:
            repo.intern(mask)
        rows, _ = repo.export_ids(watermark)
        mirror = PTRepo()  # never saw the first batch
        try:
            mirror.import_ids(rows, watermark)
        except ValueError:
            return
        raise AssertionError("gapped id-delta stream was accepted")


def digraphs(max_nodes: int = 12):
    """Random digraphs as (node count, edge list) with self loops and
    duplicates allowed."""
    return st.integers(min_value=0, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.tuples(st.integers(0, max(0, n - 1)),
                               st.integers(0, max(0, n - 1))),
                     max_size=4 * max(1, n)) if n else st.just([])))


def build(n, edges):
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node)
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph


class TestCondensationProps:
    @given(digraphs())
    @settings(max_examples=200)
    def test_components_cover_nodes_exactly_once(self, spec):
        n, edges = spec
        component_of, components, _dag = condensation(build(n, edges))
        flattened = [node for members in components for node in members]
        assert sorted(flattened) == list(range(n))
        for cid, members in enumerate(components):
            for node in members:
                assert component_of[node] == cid

    @given(digraphs())
    @settings(max_examples=200)
    def test_dag_is_topologically_ordered_and_acyclic(self, spec):
        n, edges = spec
        graph = build(n, edges)
        component_of, components, dag = condensation(graph)
        # Every original edge maps to an equal-or-forward component edge;
        # strictly forward in the DAG (self-loops are dropped), which
        # makes the component order topological and the DAG acyclic.
        for src, dst in edges:
            assert component_of[src] <= component_of[dst]
        for csrc in dag.nodes():
            for cdst in dag.successors(csrc):
                assert csrc < cdst

    @given(digraphs())
    @settings(max_examples=200)
    def test_components_are_maximal_sccs(self, spec):
        n, edges = spec
        graph = build(n, edges)
        component_of, components, _dag = condensation(graph)
        reach = _reachability(n, edges)
        for a in range(n):
            for b in range(n):
                together = reach[a][b] and reach[b][a]
                assert (component_of[a] == component_of[b]) == together

    @given(digraphs())
    @settings(max_examples=100)
    def test_matches_parallel_array_condensation(self, spec):
        # The partitioner's array-based Tarjan must agree with the
        # dict-keyed reference on the component *partition* (numbering
        # may differ only if both are topological; with identical
        # tie-breaking they coincide on the SCC sets).
        from repro.parallel.partition import _condense_adjacency

        n, edges = spec
        succs = [[] for _ in range(n)]
        for src, dst in edges:
            succs[src].append(dst)
        component_of, components = _condense_adjacency(succs)
        ref_of, ref_components, _ = condensation(build(n, edges))
        assert ({frozenset(c) for c in components}
                == {frozenset(c) for c in ref_components})
        for src, dst in edges:
            assert component_of[src] <= component_of[dst]


def _reachability(n, edges):
    reach = [[False] * n for _ in range(n)]
    adj = [[] for _ in range(n)]
    for src, dst in edges:
        adj[src].append(dst)
    for start in range(n):
        stack = [start]
        row = reach[start]
        row[start] = True
        while stack:
            node = stack.pop()
            for succ in adj[node]:
                if not row[succ]:
                    row[succ] = True
                    stack.append(succ)
    return reach
