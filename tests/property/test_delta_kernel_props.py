"""Property tests for the delta propagation kernel and points-to repository.

Both optimisations must be *invisible*: on any generated program, every
(delta × ptrepo) configuration of either staged solver yields exactly the
snapshot of the eager full-mask path, and the usual precision lattice
SFS = VSFS ⊆ ICFG-FS ⊆ Andersen survives with the optimisations on.
The delta kernel must also never apply more unions than the eager path —
it exists to remove redundant set work, not to reorder it into more.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.andersen import run_andersen
from repro.bench.workloads import WorkloadConfig, generate_program
from repro.core.vsfs import VSFSAnalysis
from repro.pipeline import AnalysisPipeline
from repro.solvers.sfs import SFSAnalysis

configs = st.builds(
    WorkloadConfig,
    name=st.just("delta-prop"),
    seed=st.integers(0, 10_000),
    num_fields=st.integers(1, 4),
    num_globals=st.integers(1, 4),
    num_handlers=st.integers(0, 2),
    num_functions=st.integers(1, 5),
    stmts_per_function=st.integers(2, 8),
    indirect_call_rate=st.floats(0.0, 0.5),
    store_rate=st.floats(0.1, 0.6),
    branch_rate=st.floats(0.0, 0.4),
    loop_rate=st.floats(0.0, 0.3),
    malloc_rate=st.floats(0.0, 0.3),
    recursion_rate=st.floats(0.0, 0.1),
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# Direct calls only: with indirect calls the staged solvers and the dense
# ICFG baseline can resolve *different* on-the-fly call graphs (both sound,
# neither more precise), so pt_SFS ⊆ pt_ICFG only holds once the call graph
# is fixed — the same reason test_analysis_props.py asserts containment in
# Andersen, not in ICFG-FS, on random programs.
direct_configs = st.builds(
    WorkloadConfig,
    name=st.just("delta-prop-direct"),
    seed=st.integers(0, 10_000),
    num_fields=st.integers(1, 4),
    num_globals=st.integers(1, 4),
    num_handlers=st.just(0),
    num_functions=st.integers(1, 5),
    stmts_per_function=st.integers(2, 8),
    indirect_call_rate=st.just(0.0),
    store_rate=st.floats(0.1, 0.6),
    branch_rate=st.floats(0.0, 0.4),
    loop_rate=st.floats(0.0, 0.3),
    malloc_rate=st.floats(0.0, 0.3),
    recursion_rate=st.floats(0.0, 0.1),
)

MATRIX = [(delta, ptrepo) for delta in (False, True) for ptrepo in (False, True)]


class TestDeltaKernelInvisible:
    @given(configs)
    @RELAXED
    def test_all_configs_identical_snapshots(self, config):
        """Eager/delta × raw/ptrepo: same snapshot, bit for bit, and the
        kernel never applies more unions than the eager path."""
        module = generate_program(config)
        pipeline = AnalysisPipeline(module)
        pipeline.memssa()
        for solver_cls in (SFSAnalysis, VSFSAnalysis):
            results = {
                (delta, ptrepo): solver_cls(
                    pipeline.fresh_svfg(), delta=delta, ptrepo=ptrepo
                ).run()
                for delta, ptrepo in MATRIX
            }
            baseline = results[(False, False)]
            for key, result in results.items():
                assert result.snapshot() == baseline.snapshot(), (
                    f"{solver_cls.analysis_name} {key} diverged from eager"
                )
                if key[0]:  # delta on: only redundant unions removed
                    assert result.stats.unions <= baseline.stats.unions
            # The repository is pure storage: work counters unchanged.
            for delta in (False, True):
                raw, repo = results[(delta, False)], results[(delta, True)]
                assert repo.stats.propagations == raw.stats.propagations
                assert repo.stats.unions == raw.stats.unions

    @given(configs)
    @RELAXED
    def test_optimised_solvers_within_andersen(self, config):
        """SFS = VSFS ⊆ Andersen with delta + ptrepo on (any program)."""
        module = generate_program(config)
        pipeline = AnalysisPipeline(module)
        sfs = pipeline.sfs(delta=True, ptrepo=True)
        vsfs = pipeline.vsfs(delta=True, ptrepo=True)
        andersen = run_andersen(module)
        for var in module.variables:
            s, v, a = sfs.pts_mask(var), vsfs.pts_mask(var), andersen.pts_mask(var)
            assert s == v, f"SFS != VSFS at {var!r}"
            assert v | a == a, f"staged exceeds Andersen at {var!r}"

    @given(direct_configs)
    @RELAXED
    def test_precision_lattice_with_optimisations(self, config):
        """SFS = VSFS ⊆ ICFG-FS ⊆ Andersen, with delta + ptrepo on
        (direct-call programs — see ``direct_configs``)."""
        module = generate_program(config)
        pipeline = AnalysisPipeline(module)
        sfs = pipeline.sfs(delta=True, ptrepo=True)
        vsfs = pipeline.vsfs(delta=True, ptrepo=True)
        icfg = pipeline.icfg_fs()
        andersen = run_andersen(module)
        for var in module.variables:
            s, v = sfs.pts_mask(var), vsfs.pts_mask(var)
            i, a = icfg.pts_mask(var), andersen.pts_mask(var)
            assert s == v, f"SFS != VSFS at {var!r}"
            assert v | i == i, f"staged exceeds ICFG-FS at {var!r}"
            assert i | a == a, f"ICFG-FS exceeds Andersen at {var!r}"
