"""Property-based tests for the CFG analyses and the IR text round-trip."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.workloads import WorkloadConfig, generate_program
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir import BranchInst, Function, Module, RetInst
from repro.passes.cfg import CFGInfo, reverse_postorder
from repro.passes.dominators import DominatorTree, dominance_frontiers

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _random_cfg(num_blocks: int, edge_choices) -> Function:
    """Build a function whose CFG follows *edge_choices* (pairs of block
    indices); every block falls through into a branch or return."""
    module = Module("prop")
    func = Function("f")
    module.add_function(func)
    blocks = [func.add_block(f"b{i}") for i in range(num_blocks)]
    succs = {i: [] for i in range(num_blocks)}
    for a, b in edge_choices:
        a, b = a % num_blocks, b % num_blocks
        if b not in succs[a] and len(succs[a]) < 2:
            succs[a].append(b)
    for i, block in enumerate(blocks):
        targets = succs[i]
        if len(targets) == 2:
            from repro.ir.values import Constant
            from repro.ir.types import INT

            block.append(BranchInst([blocks[targets[0]], blocks[targets[1]]],
                                    Constant(0, INT)))
        elif len(targets) == 1:
            block.append(BranchInst([blocks[targets[0]]]))
        else:
            block.append(RetInst())
    return func


cfg_strategy = st.tuples(
    st.integers(2, 10),
    st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=20),
)


def _naive_dominators(func: Function):
    """O(n²) dataflow dominators: Dom(b) = {b} ∪ ⋂ Dom(preds)."""
    cfg = CFGInfo(func)
    blocks = cfg.rpo
    entry = blocks[0]
    dom = {block: set(blocks) for block in blocks}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for block in blocks[1:]:
            preds = [p for p in cfg.preds[block] if p in dom]
            new = set(blocks)
            for pred in preds:
                new &= dom[pred]
            new |= {block}
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


class TestDominatorsAgainstOracle:
    @given(cfg_strategy)
    @RELAXED
    def test_idom_matches_naive_dominator_sets(self, spec):
        num_blocks, edges = spec
        func = _random_cfg(num_blocks, edges)
        domtree = DominatorTree(func)
        naive = _naive_dominators(func)
        for block, doms in naive.items():
            for other in doms:
                assert domtree.dominates(other, block), (other.name, block.name)
            # and nothing extra dominates
            for other in naive:
                if other not in doms:
                    assert not domtree.dominates(other, block)

    @given(cfg_strategy)
    @RELAXED
    def test_frontier_definition(self, spec):
        """b ∈ DF(a) iff a dominates a pred of b but not strictly b."""
        num_blocks, edges = spec
        func = _random_cfg(num_blocks, edges)
        domtree = DominatorTree(func)
        frontiers = dominance_frontiers(domtree)
        cfg = domtree.cfg
        reachable = set(cfg.rpo)
        for a in reachable:
            expected = set()
            for b in reachable:
                preds = [p for p in cfg.preds[b] if p in reachable]
                dominates_a_pred = any(domtree.dominates(a, p) for p in preds)
                strictly = domtree.dominates(a, b) and a is not b
                if dominates_a_pred and not strictly:
                    expected.add(b)
            assert frontiers[a] == expected, a.name

    @given(cfg_strategy)
    @RELAXED
    def test_rpo_visits_preds_first_in_dags(self, spec):
        num_blocks, edges = spec
        func = _random_cfg(num_blocks, edges)
        rpo = reverse_postorder(func)
        index = {block: i for i, block in enumerate(rpo)}
        # entry is first; every reachable block appears exactly once
        assert rpo[0] is func.entry_block
        assert len(set(rpo)) == len(rpo)


workload_configs = st.builds(
    WorkloadConfig,
    name=st.just("roundtrip"),
    seed=st.integers(0, 5000),
    num_functions=st.integers(1, 4),
    stmts_per_function=st.integers(2, 6),
    num_globals=st.integers(1, 3),
    num_handlers=st.integers(0, 2),
    loop_rate=st.floats(0.0, 0.3),
)


class TestTextRoundTrip:
    @given(workload_configs)
    @RELAXED
    def test_print_parse_print_fixpoint(self, config):
        """Textual IR is a faithful serialisation: printing the parse of a
        printed module reproduces the text exactly."""
        module = generate_program(config)
        text = print_module(module)
        reparsed = parse_module(text, name=module.name)
        assert print_module(reparsed) == text
