"""Property-based tests for the function-granular incremental spine.

Pins down the two contracts everything downstream leans on:

- **Sibling stability** of per-function fingerprints: a hash depends
  only on its own function's content — whitespace/comment noise changes
  nothing, reordering siblings changes nothing, and editing one function
  changes exactly that function's hash.
- **Monotonicity** of the dependency map's dirty closure: adding seeds
  or edges can only grow the closure, and a dirty function forces every
  successor dirty.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.incremental import DependencyMap
from repro.ir.fingerprint import module_function_fingerprints
from repro.pipeline import AnalysisPipeline

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# ------------------------------------------------------- program generator

#: Leaf-function body templates; {k} is a small constant that varies the
#: content hash without changing the shape.
BODIES = (
    "int {name}() {{ int a; a = {k}; return a; }}",
    "int {name}() {{ int a; int b; a = {k}; b = a + 1; return b; }}",
    "int {name}() {{ int x; int *p; p = &x; *p = {k}; return x; }}",
    "int {name}() {{ int x; int y; int *p; p = &x; p = &y; "
    "*p = {k}; return y; }}",
)


def leaf(name, body_ix, k):
    return BODIES[body_ix % len(BODIES)].format(name=name, k=k)


def program(leaves):
    """Source with *leaves* (list of (body_ix, k)) and a main calling all."""
    parts = [leaf(f"f{i}", body_ix, k)
             for i, (body_ix, k) in enumerate(leaves)]
    calls = " ".join(f"f{i}();" for i in range(len(leaves)))
    parts.append(f"int main() {{ {calls} return 0; }}")
    return "\n".join(parts)


def fingerprints(src):
    return module_function_fingerprints(
        AnalysisPipeline.from_source(src).module)


leaves_strategy = st.lists(
    st.tuples(st.integers(0, len(BODIES) - 1), st.integers(0, 9)),
    min_size=2, max_size=5)


# ------------------------------------------------------ fingerprint props

class TestFingerprintStability:
    @RELAXED
    @given(leaves_strategy, st.integers(0, 2))
    def test_whitespace_and_comments_are_invisible(self, leaves, mode):
        src = program(leaves)
        if mode == 0:
            noisy = src.replace("; ", ";\n    ")
        elif mode == 1:
            noisy = src.replace("; ", "; /* noise */ ")
        else:
            noisy = src.replace("{ ", "{\n\t// noise\n\t").replace("; ",
                                                                   ";  ")
        assert fingerprints(src) == fingerprints(noisy)

    @RELAXED
    @given(leaves_strategy, st.randoms(use_true_random=False))
    def test_sibling_reorder_keeps_per_function_hashes(self, leaves, rng):
        src = program(leaves)
        order = list(range(len(leaves)))
        rng.shuffle(order)
        reordered_defs = [leaf(f"f{i}", *leaves[i]) for i in order]
        calls = " ".join(f"f{i}();" for i in range(len(leaves)))
        reordered = "\n".join(
            reordered_defs + [f"int main() {{ {calls} return 0; }}"])
        assert fingerprints(src) == fingerprints(reordered)

    @RELAXED
    @given(leaves_strategy, st.integers(0, 4), st.integers(0, 3),
           st.integers(10, 19))
    def test_single_edit_touches_exactly_one_hash(self, leaves, which,
                                                  body_ix, k):
        which %= len(leaves)
        edited = list(leaves)
        edited[which] = (body_ix, k)
        old = fingerprints(program(leaves))
        new = fingerprints(program(edited))
        assert set(old) == set(new)
        for name in old:
            if name == f"f{which}":
                assert (old[name] == new[name]) == (
                    leaves[which] == edited[which])
            else:
                assert old[name] == new[name], name


# ---------------------------------------------------- dirty-closure props

names = st.sampled_from([f"n{i}" for i in range(8)])
edges_strategy = st.dictionaries(
    names, st.sets(names, max_size=4), max_size=8)
seeds_strategy = st.sets(names, max_size=4)


class TestDirtyClosureMonotone:
    @RELAXED
    @given(edges_strategy, seeds_strategy, seeds_strategy)
    def test_more_seeds_never_shrink_the_closure(self, edges, seeds, extra):
        dep = DependencyMap(edges)
        assert dep.dirty_closure(seeds) <= dep.dirty_closure(seeds | extra)

    @RELAXED
    @given(edges_strategy, edges_strategy, seeds_strategy)
    def test_more_edges_never_shrink_the_closure(self, edges, more, seeds):
        sparse = DependencyMap(edges)
        dense = DependencyMap(edges)
        for src, dsts in more.items():
            for dst in dsts:
                dense.add_edge(src, dst)
        assert sparse.dirty_closure(seeds) <= dense.dirty_closure(seeds)

    @RELAXED
    @given(edges_strategy, seeds_strategy)
    def test_dirty_forces_successors_dirty(self, edges, seeds):
        dep = DependencyMap(edges)
        closure = dep.dirty_closure(seeds)
        assert seeds <= closure
        for name in closure:
            assert dep.edges.get(name, set()) <= closure
