"""Property-based tests over randomly generated programs.

The central invariant of the paper (§IV-E): on *any* program, VSFS computes
exactly the same points-to information as SFS, and both stay within the
auxiliary (Andersen) results.  The program generator drives the full
pipeline, so every random example exercises frontend → partial SSA →
Andersen → memory SSA → SVFG → both solvers.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.andersen import run_andersen
from repro.bench.workloads import WorkloadConfig, generate_program, generate_source
from repro.core.versioning import ObjectVersioning
from repro.pipeline import AnalysisPipeline

configs = st.builds(
    WorkloadConfig,
    name=st.just("prop"),
    seed=st.integers(0, 10_000),
    num_fields=st.integers(1, 4),
    num_globals=st.integers(1, 4),
    num_handlers=st.integers(0, 2),
    num_functions=st.integers(1, 5),
    stmts_per_function=st.integers(2, 8),
    indirect_call_rate=st.floats(0.0, 0.5),
    store_rate=st.floats(0.1, 0.5),
    branch_rate=st.floats(0.0, 0.4),
    loop_rate=st.floats(0.0, 0.3),
    malloc_rate=st.floats(0.0, 0.3),
    recursion_rate=st.floats(0.0, 0.1),
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSolverEquivalence:
    @given(configs)
    @RELAXED
    def test_vsfs_equals_sfs(self, config):
        module = generate_program(config)
        pipeline = AnalysisPipeline(module)
        sfs = pipeline.sfs()
        vsfs = pipeline.vsfs()
        assert [sfs.pts_mask(v) for v in module.variables] == \
            [vsfs.pts_mask(v) for v in module.variables]

    @given(configs)
    @RELAXED
    def test_flow_sensitive_within_andersen(self, config):
        module = generate_program(config)
        pipeline = AnalysisPipeline(module)
        andersen = run_andersen(module)
        vsfs = pipeline.vsfs()
        for var in module.variables:
            fs = vsfs.pts_mask(var)
            fi = andersen.pts_mask(var)
            assert fs | fi == fi, f"VSFS exceeds Andersen at {var!r}"

    @given(configs)
    @RELAXED
    def test_callgraphs_agree(self, config):
        module = generate_program(config)
        pipeline = AnalysisPipeline(module)
        sfs = pipeline.sfs()
        vsfs = pipeline.vsfs()
        assert {(c.id, f.name) for c, f in sfs.callgraph.call_edges()} == \
            {(c.id, f.name) for c, f in vsfs.callgraph.call_edges()}


class TestVersioningProps:
    @given(configs)
    @RELAXED
    def test_meld_strategies_agree(self, config):
        module = generate_program(config)
        pipeline = AnalysisPipeline(module)
        scc = ObjectVersioning(pipeline.fresh_svfg()).run(
            strategy="scc", release_masks=False)
        fixpoint = ObjectVersioning(pipeline.fresh_svfg()).run(
            strategy="fixpoint", release_masks=False)
        assert scc.consumed_masks == fixpoint.consumed_masks
        assert scc.yielded_masks == fixpoint.yielded_masks
        assert scc.num_constraints() == fixpoint.num_constraints()

    @given(configs)
    @RELAXED
    def test_generator_is_deterministic(self, config):
        assert generate_source(config) == generate_source(config)

    @given(configs)
    @RELAXED
    def test_stores_yield_unique_versions(self, config):
        """[STORE]ᴾ: no two stores may yield the same version of an object."""
        from repro.ir.instructions import StoreInst
        from repro.svfg.nodes import InstNode

        module = generate_program(config)
        pipeline = AnalysisPipeline(module)
        svfg = pipeline.fresh_svfg()
        versioning = ObjectVersioning(svfg).run()
        seen = set()
        for node in svfg.nodes:
            if isinstance(node, InstNode) and isinstance(node.inst, StoreInst):
                for chi in svfg.memssa.store_chis.get(node.inst, ()):
                    key = (chi.obj.id, versioning.yielded_version(node.id, chi.obj.id))
                    assert key not in seen, "two stores share a yielded version"
                    seen.add(key)
