"""Property-based structural invariants of generated SVFGs."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.workloads import WorkloadConfig, generate_program
from repro.ir.instructions import LoadInst, StoreInst
from repro.pipeline import AnalysisPipeline
from repro.svfg.nodes import (
    ActualINNode,
    ActualOUTNode,
    FormalINNode,
    FormalOUTNode,
    InstNode,
    MemPhiNode,
)

configs = st.builds(
    WorkloadConfig,
    name=st.just("svfgprop"),
    seed=st.integers(0, 3000),
    num_functions=st.integers(1, 5),
    stmts_per_function=st.integers(2, 8),
    num_globals=st.integers(1, 4),
    num_handlers=st.integers(0, 2),
    indirect_call_rate=st.floats(0.0, 0.4),
)

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(configs)
@RELAXED
def test_indirect_edges_mirror(config):
    """ind_preds and ind_succs describe the same edge set."""
    svfg = AnalysisPipeline(generate_program(config)).svfg()
    forward = {
        (src, dst, oid)
        for src in range(len(svfg.nodes))
        for oid, dsts in svfg.ind_succs[src].items()
        for dst in dsts
    }
    backward = {
        (src, dst, oid)
        for dst in range(len(svfg.nodes))
        for src, oid in svfg.ind_preds[dst]
    }
    assert forward == backward
    assert len(forward) == svfg.num_indirect_edges()


@given(configs)
@RELAXED
def test_indirect_sources_are_definitions(config):
    """Only nodes that can define an object version have outgoing
    o-labelled edges: stores, MEMPHIs, entry-χ (FormalIN), call-χ
    (ActualOUT) — plus ActualIN/FormalOUT relay nodes."""
    svfg = AnalysisPipeline(generate_program(config)).svfg()
    for node in svfg.nodes:
        if not svfg.ind_succs[node.id]:
            continue
        if isinstance(node, InstNode):
            assert isinstance(node.inst, StoreInst), node.describe()
        else:
            assert isinstance(
                node,
                (MemPhiNode, FormalINNode, FormalOUTNode, ActualINNode, ActualOUTNode),
            ), node.describe()


@given(configs)
@RELAXED
def test_loads_never_forward_indirect(config):
    """Loads are pure uses of object versions (the paper's def-use edges go
    definition → use, never through a load)."""
    svfg = AnalysisPipeline(generate_program(config)).svfg()
    for node in svfg.nodes:
        if isinstance(node, InstNode) and isinstance(node.inst, LoadInst):
            assert not svfg.ind_succs[node.id]


@given(configs)
@RELAXED
def test_single_object_nodes_edge_labels_match(config):
    """Actual/Formal IN/OUT and MEMPHI nodes only carry edges labelled with
    their own object."""
    svfg = AnalysisPipeline(generate_program(config)).svfg()
    for node in svfg.nodes:
        obj = getattr(node, "obj", None)
        if obj is None:
            continue
        for oid in svfg.ind_succs[node.id]:
            assert oid == obj.id, node.describe()
        for __, oid in svfg.ind_preds[node.id]:
            assert oid == obj.id, node.describe()


@given(configs)
@RELAXED
def test_delta_nodes_have_no_build_time_otf_edges(config):
    """δ consumes are only fed by build-time *direct-call* wiring or the
    local bypass; indirect call sites start unconnected."""
    module = generate_program(config)
    pipeline = AnalysisPipeline(module)
    svfg = pipeline.svfg()
    from repro.ir.instructions import CallInst

    for inst, node in svfg.inst_node.items():
        if isinstance(inst, CallInst) and inst.is_indirect():
            for function in module.functions.values():
                assert not svfg.is_connected(inst, function)
