"""Property-based tests for meld labelling.

The ground truth for meld labelling with the union operator is
*reachability*: a node's final label is exactly the union of the prelabels
of the nodes that (transitively) reach it — including its own (§IV-B:
"nodes have been split into equivalence classes according to the melding of
prelabels which transitively reach them").
"""

from hypothesis import given, settings, strategies as st

from repro.core.meld import MeldLabelling, meld_label
from repro.datastructs.graph import DiGraph

NODES = 12

edges_strategy = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)),
    max_size=40,
)
prelabel_strategy = st.dictionaries(
    st.integers(0, NODES - 1), st.integers(1, 7), max_size=5
)


def reachability_oracle(edges, prelabels):
    """Expected labels: union of prelabels reaching each node."""
    succs = {n: set() for n in range(NODES)}
    for a, b in edges:
        succs[a].add(b)
    expected = [0] * NODES
    for source, mask in prelabels.items():
        seen = {source}
        stack = [source]
        expected[source] |= mask
        while stack:
            node = stack.pop()
            for nxt in succs[node]:
                expected[nxt] |= mask
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
    return expected


class TestMeldReachability:
    @given(edges_strategy, prelabel_strategy)
    @settings(max_examples=200)
    def test_fast_path_matches_reachability(self, edges, prelabels):
        assert meld_label(NODES, edges, prelabels) == reachability_oracle(edges, prelabels)

    @given(edges_strategy, prelabel_strategy)
    @settings(max_examples=100)
    def test_generic_engine_matches_fast_path(self, edges, prelabels):
        graph = DiGraph()
        for n in range(NODES):
            graph.add_node(n)
        for a, b in edges:
            graph.add_edge(a, b)
        engine = MeldLabelling(graph, meld=lambda x, y: x | y, identity=0)
        for node, mask in prelabels.items():
            engine.prelabel(node, mask)
        labels = engine.run()
        assert [labels[n] for n in range(NODES)] == meld_label(NODES, edges, prelabels)

    @given(edges_strategy, prelabel_strategy)
    @settings(max_examples=100)
    def test_idempotent_rerun(self, edges, prelabels):
        first = meld_label(NODES, edges, prelabels)
        # re-running with the result as prelabels is a fixed point
        again = meld_label(NODES, edges, {n: m for n, m in enumerate(first) if m})
        assert again == first

    @given(edges_strategy, prelabel_strategy, prelabel_strategy)
    @settings(max_examples=100)
    def test_monotone_in_prelabels(self, edges, pre_a, pre_b):
        merged = dict(pre_a)
        for node, mask in pre_b.items():
            merged[node] = merged.get(node, 0) | mask
        small = meld_label(NODES, edges, pre_a)
        big = meld_label(NODES, edges, merged)
        assert all(s | b == b for s, b in zip(small, big))


class TestMeldOperatorLaws:
    """The meld operator requirements (commutative/associative/idempotent/
    identity) hold for bitwise-or — checked as the paper states them."""

    masks = st.integers(0, 2 ** 16)

    @given(masks, masks)
    def test_commutative(self, a, b):
        assert a | b == b | a

    @given(masks, masks, masks)
    def test_associative(self, a, b, c):
        assert a | (b | c) == (a | b) | c

    @given(masks)
    def test_idempotent(self, a):
        assert a | a == a

    @given(masks)
    def test_identity(self, a):
        assert a | 0 == a
