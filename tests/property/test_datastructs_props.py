"""Property-based tests: data structures against reference models."""

from hypothesis import given, settings, strategies as st

from repro.datastructs.bitset import BitSet, bits_of, count_bits, iter_bits
from repro.datastructs.interning import Interner
from repro.datastructs.unionfind import UnionFind

small_ints = st.integers(min_value=0, max_value=200)
int_sets = st.sets(small_ints, max_size=40)


class TestBitSetModel:
    @given(int_sets)
    def test_roundtrip(self, items):
        assert set(BitSet(items)) == items

    @given(int_sets, int_sets)
    def test_union_matches_sets(self, a, b):
        assert set(BitSet(a) | BitSet(b)) == a | b

    @given(int_sets, int_sets)
    def test_intersection_matches_sets(self, a, b):
        assert set(BitSet(a) & BitSet(b)) == a & b

    @given(int_sets, int_sets)
    def test_difference_matches_sets(self, a, b):
        assert set(BitSet(a) - BitSet(b)) == a - b

    @given(int_sets, int_sets)
    def test_subset_matches_sets(self, a, b):
        assert BitSet(a).issubset(BitSet(b)) == a.issubset(b)

    @given(int_sets)
    def test_count_matches_len(self, items):
        assert count_bits(bits_of(items)) == len(items)

    @given(int_sets)
    def test_iter_bits_sorted(self, items):
        assert list(iter_bits(bits_of(items))) == sorted(items)

    @given(int_sets, small_ints)
    def test_add_then_contains(self, items, extra):
        s = BitSet(items)
        s.add(extra)
        assert extra in s and set(s) == items | {extra}

    @given(int_sets, small_ints)
    def test_discard_removes(self, items, victim):
        s = BitSet(items)
        s.discard(victim)
        assert set(s) == items - {victim}

    @given(int_sets)
    def test_pop_lowest_drains_in_order(self, items):
        s = BitSet(items)
        drained = []
        while s:
            drained.append(s.pop_lowest())
        assert drained == sorted(items)


class TestInternerProps:
    @given(st.lists(st.text(max_size=5)))
    def test_ids_dense_and_stable(self, values):
        interner = Interner()
        ids = [interner.intern(v) for v in values]
        # stable: re-interning returns the same id
        assert [interner.intern(v) for v in values] == ids
        # dense: ids cover 0..len(distinct)-1
        assert sorted(set(ids)) == list(range(len(set(values))))

    @given(st.lists(st.integers(), max_size=30))
    def test_value_of_inverts_intern(self, values):
        interner = Interner()
        for v in values:
            assert interner.value_of(interner.intern(v)) == v


class TestUnionFindModel:
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40))
    def test_matches_naive_partition(self, unions):
        uf = UnionFind(21)
        partition = {i: {i} for i in range(21)}
        for a, b in unions:
            uf.union(a, b)
            merged = partition[a] | partition[b]
            for member in merged:
                partition[member] = merged
        for i in range(21):
            for j in range(21):
                assert uf.same(i, j) == (j in partition[i])
