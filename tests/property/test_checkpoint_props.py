"""Property tests for checkpoint serialisation.

Three invariants:

- :class:`PTRepo` snapshot/restore preserves every interned set *and* its
  id — resumed solvers keep using recorded entry ids, so id stability is
  load-bearing, not cosmetic.
- :class:`ObjectVersioning` (the VSFS meld/version tables) round-trips
  through its snapshot exactly, including the ``[INTERNAL]`` version
  sharing the restore replays.
- A sealed file under arbitrary single-byte corruption or truncation
  either still reads back *exactly* the original document (the flip hit a
  byte the seal canonicalisation ignores — rare but possible) or raises a
  typed :class:`CheckpointError`; it never returns different data and
  never leaks an untyped exception.
"""

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.versioning import ObjectVersioning
from repro.datastructs.ptrepo import PTRepo
from repro.errors import CheckpointError
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline
from repro.store.atomic import read_sealed_json, write_sealed_json

RELAXED = settings(max_examples=50, deadline=None,
                   suppress_health_check=[HealthCheck.function_scoped_fixture])

masks_strategy = st.lists(st.integers(min_value=0, max_value=2 ** 200),
                          max_size=40)


class TestPTRepoRoundTrip:
    @given(masks_strategy)
    @settings(max_examples=200)
    def test_snapshot_preserves_sets_and_ids(self, masks):
        repo = PTRepo()
        ids = [repo.intern(mask) for mask in masks]
        restored = PTRepo.from_snapshot(repo.snapshot())
        for entry, mask in zip(ids, masks):
            assert restored.mask(entry) == mask
        # Interning the same sets again yields the same ids.
        for entry, mask in zip(ids, masks):
            assert restored.intern(mask) == entry

    @given(masks_strategy, masks_strategy)
    @settings(max_examples=100)
    def test_restored_repo_unions_like_original(self, masks, others):
        repo = PTRepo()
        entries = [repo.intern(mask) for mask in masks]
        restored = PTRepo.from_snapshot(repo.snapshot())
        for entry in entries:
            for other in others:
                assert (restored.mask(restored.union_mask(entry, other))
                        == repo.mask(repo.union_mask(entry, other)))


# A pool of small programs with stores, loads, branches and indirect
# calls: enough shape diversity for the versioning tables to differ.
PROGRAMS = [
    "int *g; int x; int main() { g = &x; return 0; }",
    """
    int *g; int x; int y;
    int main(int c) { if (c) { g = &x; } else { g = &y; } int *l = g; return 0; }
    """,
    """
    struct node { int v; struct node *f0; };
    struct node *g;
    struct node *cb1(struct node *a, struct node *b) { g = a; return b; }
    struct node *cb2(struct node *a, struct node *b) { g = b; return a; }
    fnptr h;
    int main(int c) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        if (c) { h = cb1; } else { h = cb2; }
        struct node *r = h(n, g);
        return 0;
    }
    """,
]

#: (object id, source version, destination version) triples, as
#: add_constraint takes them.
constraint_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.integers(1, 8), st.integers(1, 8)),
    max_size=10)


class TestVersioningRoundTrip:
    @given(st.integers(0, len(PROGRAMS) - 1), constraint_strategy)
    @settings(max_examples=40, deadline=None)
    def test_meld_tables_round_trip(self, program_index, extra_constraints):
        pipeline = AnalysisPipeline(compile_c(PROGRAMS[program_index]))
        svfg = pipeline.svfg()
        versioning = ObjectVersioning(svfg).run()
        node_count = len(svfg.nodes)
        object_count = len(pipeline.module.objects)
        # Extra constraints model on-the-fly call edges discovered
        # mid-solve (the state a checkpoint must capture).
        for oid, src_ver, dst_ver in extra_constraints:
            versioning.add_constraint(oid % max(object_count, 1),
                                      src_ver, dst_ver)
        state = versioning.snapshot()
        restored = ObjectVersioning(svfg).restore(state)
        assert restored.snapshot() == state
        # The version tables answer identically for every (node, object).
        for node in range(node_count):
            for obj in range(object_count):
                assert (restored.consumed_version(node, obj)
                        == versioning.consumed_version(node, obj))
                assert (restored.yielded_version(node, obj)
                        == versioning.yielded_version(node, obj))


document_strategy = st.fixed_dictionaries({
    "meta": st.dictionaries(st.text(max_size=8),
                            st.integers(-100, 100), max_size=4),
    "payload": st.recursive(
        st.one_of(st.integers(-1000, 1000), st.text(max_size=10),
                  st.booleans(), st.none()),
        lambda leaf: st.lists(leaf, max_size=4),
        max_leaves=10),
})


class TestSealedCorruptionFuzz:
    @given(document_strategy, st.data())
    @settings(max_examples=150, deadline=None)
    def test_any_single_byte_flip_is_detected_or_harmless(self, document, data):
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "doc.json")
            write_sealed_json(path, "fuzz", 1,
                              document["meta"], document["payload"])
            with open(path, "rb") as handle:
                raw = bytearray(handle.read())
            offset = data.draw(st.integers(0, len(raw) - 1))
            flip = data.draw(st.integers(1, 255))
            raw[offset] ^= flip
            with open(path, "wb") as handle:
                handle.write(bytes(raw))
            try:
                meta, payload = read_sealed_json(path, "fuzz", 1)
            except CheckpointError:
                return  # detected: the only acceptable failure mode
            assert meta == document["meta"]
            assert payload == document["payload"]

    @given(document_strategy, st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_truncation_is_detected(self, document, data):
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "doc.json")
            write_sealed_json(path, "fuzz", 1,
                              document["meta"], document["payload"])
            size = os.path.getsize(path)
            keep = data.draw(st.integers(0, size - 1))
            with open(path, "r+b") as handle:
                handle.truncate(keep)
            try:
                read_sealed_json(path, "fuzz", 1)
            except CheckpointError:
                return
            raise AssertionError("truncated sealed file was accepted")
