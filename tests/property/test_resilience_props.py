"""Property tests for the self-healing I/O layer (DESIGN.md §12).

One invariant, three media: an on-disk artifact — mask arena, solver
checkpoint, stage-cache entry — corrupted by a byte flip or truncation
at an *arbitrary* offset must never produce garbage downstream.  Each
load either

- self-heals (the resilient wrapper quarantines/rebuilds and the caller
  gets a correct answer), or
- raises a **typed** quarantining error (:class:`CheckpointError` /
  :class:`ArenaError`) at the strict layer.

Never an untyped exception, never silently different data.
"""

import os
import shutil

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datastructs.arena import ArenaError, PTArena
from repro.datastructs.mde import MdeEngine
from repro.engine import Engine, StageCache, StageContext
from repro.errors import CheckpointError
from repro.runtime.checkpoint import load_checkpoint
from repro.store.atomic import write_sealed_json

RELAXED = settings(max_examples=30, deadline=None,
                   suppress_health_check=[HealthCheck.function_scoped_fixture])

SOURCE = """
int *g; int x; int y;
int main() { g = &x; int *a; a = g; g = &y; return 0; }
"""


def _mutilate(path: str, offset: int, mode: str, bit: int) -> None:
    """Flip one bit at *offset* (mod size) or truncate there."""
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        return
    offset %= len(data)
    if mode == "truncate":
        data = data[:offset]
    else:
        data[offset] ^= 1 << bit
    with open(path, "wb") as handle:
        handle.write(bytes(data))


corruption = st.tuples(st.integers(min_value=0, max_value=10 ** 6),
                       st.sampled_from(["flip", "truncate"]),
                       st.integers(min_value=0, max_value=7))


class TestArenaCorruption:
    @pytest.fixture
    def arena_file(self, tmp_path):
        path = str(tmp_path / "arena.bin")
        arena = PTArena.open(path)
        arena.append_masks([0, 1, (1 << 130) | 5, 0xDEADBEEF, 7 << 64])
        arena.close()
        return path

    @RELAXED
    @given(corruption)
    def test_writer_open_never_raises(self, arena_file, corruption):
        offset, mode, bit = corruption
        work = arena_file + ".case"
        shutil.copyfile(arena_file, work)
        _mutilate(work, offset, mode, bit)
        # The resilient writer-side open: a structurally damaged arena is
        # quarantined and a fresh one created in its place; a surviving
        # one attaches.  Both ways the engine comes up — never an
        # exception escapes.
        engine = MdeEngine.open(work)
        if engine.arena_quarantined is not None:
            assert os.path.exists(engine.arena_quarantined)
        if engine.arena is not None:
            engine.arena.close()
        for name in os.listdir(os.path.dirname(work)):
            if ".case" in name:
                os.remove(os.path.join(os.path.dirname(work), name))

    @RELAXED
    @given(corruption)
    def test_strict_attach_is_typed_or_structurally_sound(self, arena_file,
                                                          corruption):
        offset, mode, bit = corruption
        work = arena_file + ".case"
        shutil.copyfile(arena_file, work)
        _mutilate(work, offset, mode, bit)
        # The strict reader (worker side): either the structure validates
        # and every record walks cleanly, or a typed ArenaError.
        try:
            arena = PTArena.attach(work)
        except ArenaError:
            pass
        else:
            arena.close()
        finally:
            os.remove(work)


class TestCheckpointCorruption:
    @pytest.fixture
    def checkpoint_file(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        write_sealed_json(path, "checkpoint", 1,
                          {"ir_hash": "x" * 8, "analysis": "sfs",
                           "delta": True, "ptrepo": True, "step": 12},
                          {"worklist": [1, 2, 3], "pt": ["0x5"]})
        return path

    @RELAXED
    @given(corruption)
    def test_load_is_exact_or_typed(self, checkpoint_file, corruption):
        offset, mode, bit = corruption
        work = checkpoint_file + ".case"
        shutil.copyfile(checkpoint_file, work)
        _mutilate(work, offset, mode, bit)
        try:
            meta, payload = load_checkpoint(work)
        except CheckpointError as err:
            # Typed, and the damaged file was quarantined: the next
            # supervisor retry starts fresh instead of tripping again.
            assert err.reason in ("missing", "corrupt", "schema", "kind")
            assert not os.path.exists(work)
        else:
            # The flip hit a byte the seal ignores: data must be EXACT.
            assert meta["step"] == 12
            assert payload == {"worklist": [1, 2, 3], "pt": ["0x5"]}
        for leftover in [work] + [work + s for s in (".quarantined",)]:
            if os.path.exists(leftover):
                os.remove(leftover)


class TestStageCacheCorruption:
    @pytest.fixture
    def warm_cache_dir(self, tmp_path):
        cache_dir = str(tmp_path / "stages")
        cache = StageCache(cache_dir)
        ctx = StageContext(module=None, source=SOURCE, language="c",
                           cache=cache)
        engine = Engine(ctx)
        engine.ensure("versioning")
        baseline = engine.solve("vsfs").snapshot()
        return cache_dir, baseline

    def _entries(self, cache_dir):
        return sorted(os.path.join(cache_dir, name)
                      for name in os.listdir(cache_dir)
                      if not name.endswith(".quarantined"))

    @RELAXED
    @given(st.data())
    def test_default_mode_heals_to_the_exact_answer(self, warm_cache_dir,
                                                    data):
        cache_dir, baseline = warm_cache_dir
        entries = self._entries(cache_dir)
        victim = data.draw(st.sampled_from(entries))
        offset, mode, bit = data.draw(corruption)
        backup = victim + ".orig"
        shutil.copyfile(victim, backup)
        _mutilate(victim, offset, mode, bit)
        try:
            ctx = StageContext(module=None, source=SOURCE, language="c",
                               cache=StageCache(cache_dir))
            engine = Engine(ctx)
            # Whatever the corruption did — detected (quarantine +
            # recompute, heal recorded) or harmless — the answer is
            # bit-identical to the warm baseline.  Never garbage.
            assert engine.solve("vsfs").snapshot() == baseline
        finally:
            shutil.move(backup, victim)  # restore warmth for the next case
            for name in os.listdir(cache_dir):
                if name.endswith(".quarantined"):
                    os.remove(os.path.join(cache_dir, name))

    @RELAXED
    @given(st.data())
    def test_strict_mode_is_exact_or_typed(self, warm_cache_dir, data):
        cache_dir, baseline = warm_cache_dir
        entries = self._entries(cache_dir)
        victim = data.draw(st.sampled_from(entries))
        offset, mode, bit = data.draw(corruption)
        backup = victim + ".orig"
        shutil.copyfile(victim, backup)
        _mutilate(victim, offset, mode, bit)
        try:
            ctx = StageContext(module=None, source=SOURCE, language="c",
                               cache=StageCache(cache_dir),
                               strict_cache=True)
            engine = Engine(ctx)
            try:
                snapshot = engine.solve("vsfs").snapshot()
            except CheckpointError:
                pass  # typed fail-fast: the strict contract
            else:
                assert snapshot == baseline
        finally:
            shutil.move(backup, victim)
            for name in os.listdir(cache_dir):
                if name.endswith(".quarantined"):
                    os.remove(os.path.join(cache_dir, name))
