#!/usr/bin/env python3
"""Pipeline walkthrough in the spirit of the paper's Figure 1: C source →
partial-SSA IR → χ/μ annotations → SVFG.

Shows, for a small program, the IR after mem2reg, the memory SSA
annotations the auxiliary analysis induces, and the SVFG's indirect
(value-flow) edges with their object labels.

Run:  python examples/ir_walkthrough.py
"""

from repro import AnalysisPipeline, compile_c
from repro.ir import print_module
from repro.ir.printer import format_instruction
from repro.svfg.nodes import InstNode

SOURCE = r"""
int a;
int *p;

int main(int c) {
    p = &a;          // *p now names a
    int *q;
    q = p;
    *q = 5;          // store through the alias
    int v;
    v = *p;          // reads what *q wrote
    return v;
}
"""


def main() -> None:
    module = compile_c(SOURCE)
    pipeline = AnalysisPipeline(module)
    memssa = pipeline.memssa()
    svfg = pipeline.svfg()

    print("== IR (partial SSA after mem2reg) ==")
    print(print_module(module, show_labels=True))

    print("== memory SSA annotations (chi/mu) ==")
    for inst, chis in memssa.store_chis.items():
        annotations = ", ".join(repr(chi) for chi in chis)
        print(f"  l{inst.id}: {format_instruction(inst)}   [{annotations}]")
    for inst, mus in memssa.load_mus.items():
        annotations = ", ".join(repr(mu) for mu in mus)
        print(f"  l{inst.id}: {format_instruction(inst)}   [{annotations}]")
    print(f"  ({memssa.num_memphis()} MEMPHI nodes inserted)")

    print("\n== SVFG indirect (value-flow) edges ==")
    for node in svfg.nodes:
        for oid, succs in svfg.ind_succs[node.id].items():
            obj = module.objects[oid]
            for succ in succs:
                print(f"  {node.describe():40s} --[{obj.name}]--> "
                      f"{svfg.nodes[succ].describe()}")

    stats = svfg.stats()
    print(f"\nSVFG: {stats.num_nodes} nodes, {stats.num_direct_edges} direct edges, "
          f"{stats.num_indirect_edges} indirect edges")


if __name__ == "__main__":
    main()
