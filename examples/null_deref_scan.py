#!/usr/bin/env python3
"""Vulnerability-detection client: possibly-null dereference scanning.

Demonstrates the precision flow-sensitivity buys for a real client: the
dereference of `cfg` before `load_config()` runs is invisible to the
flow-insensitive auxiliary analysis (which merges the later
initialisation into the whole program) but caught by VSFS.

Run:  python examples/null_deref_scan.py
"""

from repro import AnalysisPipeline, compile_c
from repro.clients.nullderef import find_null_derefs

SOURCE = r"""
struct config { int verbose; struct config *fallback; };

struct config *cfg;

void load_config() {
    cfg = (struct config*)malloc(sizeof(struct config));
    cfg->fallback = null;
}

int main(int argc) {
    int v;
    v = cfg->verbose;         // BUG: cfg dereferenced before load_config()
    load_config();
    v = cfg->verbose;         // fine afterwards
    return v;
}
"""


def main() -> None:
    module = compile_c(SOURCE)
    pipeline = AnalysisPipeline(module)
    andersen = pipeline.andersen()
    vsfs = pipeline.vsfs()

    report = find_null_derefs(module, vsfs, andersen)
    print(f"warnings: {len(report)}")
    for warning in report:
        print(f"  {warning.describe()}")

    fs_only = report.flow_sensitive_only()
    print(f"\n{len(fs_only)} of these are invisible to the flow-insensitive "
          f"auxiliary analysis —")
    print("flow-sensitivity (SFS/VSFS) is what pays for this client.")


if __name__ == "__main__":
    main()
