#!/usr/bin/env python3
"""Quickstart: analyse a small C program with VSFS.

Run:  python examples/quickstart.py
"""

from repro import AnalysisPipeline, compile_c

SOURCE = r"""
int *g;         // a global pointer slot
int x; int y;

void choose(int c) {
    if (c) { g = &x; } else { g = &y; }
}

void sink_before(int *p) { }
void sink_after(int *p) { }

int main(int c) {
    sink_before(g);   // nothing stored yet: empty points-to set
    choose(c);
    sink_after(g);    // after the call: {x, y}
    return 0;
}
"""


def main() -> None:
    module = compile_c(SOURCE)
    pipeline = AnalysisPipeline(module)

    # The staged pipeline: Andersen's auxiliary analysis, memory SSA, the
    # SVFG, then the versioned flow-sensitive solver (the paper's VSFS).
    result = pipeline.vsfs()

    print("== points-to sets (top-level variables) ==")
    for var in module.variables:
        pts = result.points_to(var)
        if pts:
            names = ", ".join(sorted(obj.name for obj in pts))
            print(f"  pt({var!r}) = {{{names}}}")

    before = module.functions["sink_before"].params[0]
    after = module.functions["sink_after"].params[0]
    print("\n== flow-sensitivity in action ==")
    print(f"  g before choose(): {sorted(o.name for o in result.points_to(before))}")
    print(f"  g after  choose(): {sorted(o.name for o in result.points_to(after))}")

    stats = result.stats
    print("\n== solver statistics ==")
    print(f"  versioning time : {stats.pre_time * 1000:.2f} ms")
    print(f"  main phase time : {stats.solve_time * 1000:.2f} ms")
    print(f"  propagations    : {stats.propagations}")
    print(f"  stored pt sets  : {stats.stored_ptsets}")
    print(f"  strong updates  : {stats.strong_updates}")


if __name__ == "__main__":
    main()
