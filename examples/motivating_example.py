#!/usr/bin/env python3
"""The paper's motivating example (Figures 2 and 9), end to end.

Shows the exact numbers Figure 2b compares: VSFS stores 3 points-to sets
for object *o* where SFS stores 6+, and needs 2 propagation constraints
where SFS needs 6+ — at identical precision.

Run:  python examples/motivating_example.py
"""

from repro.bench.motivating import MOTIVATING_SOURCE, run_motivating_example


def main() -> None:
    print("Analysing the Figure 2 fragment (GNU true-derived shape):")
    print(MOTIVATING_SOURCE)

    report = run_motivating_example()

    print("== observed precision (identical for SFS and VSFS) ==")
    for sink in ("sink_l2", "sink_l3", "sink_l4", "sink_l5"):
        label = {"sink_l2": "l2", "sink_l3": "l3", "sink_l4": "l4", "sink_l5": "l5"}[sink]
        print(f"  pt(o) consumed at {label}: {sorted(report.observed[sink])}")

    print("\n== Figure 9: consumed versions of o ==")
    for sink, version in report.consumed_versions.items():
        print(f"  C_{sink[-2:]}(o) = κ{version}")
    print("  (l2/l3 share a version; l4/l5 share the melded version)")

    print("\n== Figure 2b: storage and propagation for o ==")
    print(f"  SFS : {report.sfs_ptsets_for_o1} points-to sets, "
          f"{report.sfs_propagations_for_o1} propagation edges")
    print(f"  VSFS: {report.vsfs_ptsets_for_o1} points-to sets, "
          f"{report.vsfs_constraints_for_o1} propagation constraints")
    print("  (paper, on the simplified fragment: 6 -> 3 sets, 6 -> 2 constraints)")


if __name__ == "__main__":
    main()
