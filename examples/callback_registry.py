#!/usr/bin/env python3
"""Event-handler registry: on-the-fly call graph resolution in action.

An event loop dispatches through a table of function pointers.  The
auxiliary (Andersen) analysis believes every registered handler can run at
every dispatch site; the flow-sensitive analyses resolve the call graph on
the fly from flow-sensitive points-to sets.  This example also shows the δ
nodes (Definition 3) that make on-the-fly resolution sound under object
versioning.

Run:  python examples/callback_registry.py
"""

from repro import AnalysisPipeline, compile_c
from repro.analysis.andersen import run_andersen

SOURCE = r"""
struct event { int kind; struct event *next; };

fnptr on_open;
fnptr on_close;
struct event *log_head;

struct event *handle_open(struct event *e, struct event *prev) {
    struct event *entry = (struct event*)malloc(sizeof(struct event));
    entry->next = log_head;
    log_head = entry;
    return e;
}

struct event *handle_close(struct event *e, struct event *prev) {
    return prev;
}

void sink_dispatched(struct event *e) { }

int main(int c) {
    on_open = handle_open;
    on_close = handle_close;
    struct event *ev = (struct event*)malloc(sizeof(struct event));
    struct event *r;
    if (c) {
        r = on_open(ev, null);
    } else {
        r = on_close(ev, log_head);
    }
    sink_dispatched(r);
    return 0;
}
"""


def main() -> None:
    module = compile_c(SOURCE)
    pipeline = AnalysisPipeline(module)

    andersen = run_andersen(module)
    vsfs = pipeline.vsfs()
    svfg = pipeline.svfg()

    print("== call graph resolution ==")
    print(f"  Andersen call edges       : {andersen.callgraph.num_edges()}")
    print(f"  flow-sensitive call edges : {vsfs.callgraph.num_edges()}")
    print(f"  indirect calls resolved   : {vsfs.stats.indirect_calls_resolved}")

    print("\n== resolved targets per indirect call site ==")
    for call, targets in vsfs.callgraph.callees.items():
        if call.is_indirect():
            names = ", ".join(sorted(f.name for f in targets))
            print(f"  call at l{call.id} -> {{{names}}}")

    print("\n== delta nodes (may gain edges during solving) ==")
    print(f"  {len(svfg.delta_nodes)} delta nodes in the SVFG")
    for node_id in sorted(svfg.delta_nodes)[:8]:
        print(f"    {svfg.nodes[node_id].describe()}")

    sink = module.functions["sink_dispatched"].params[0]
    print("\n== what reaches the dispatcher's result ==")
    print(f"  pt(dispatched) = {sorted(o.name for o in vsfs.points_to(sink))}")


if __name__ == "__main__":
    main()
