#!/usr/bin/env python3
"""Regenerate the paper's Table II and Table III on the synthetic suite.

Run:  python examples/suite_report.py [bench ...]

With no arguments the full 15-program suite runs (a few minutes); pass
benchmark names (e.g. ``du ninja nano``) for a quick subset.
"""

import sys
import time

from repro.bench.runner import run_suite_program
from repro.bench.tables import format_table2, format_table3
from repro.bench.workloads import SUITE


def main() -> None:
    names = sys.argv[1:] or list(SUITE)
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        print(f"unknown benchmarks: {unknown}; choose from {list(SUITE)}")
        raise SystemExit(1)

    results = []
    for name in names:
        start = time.perf_counter()
        print(f"analysing {name} ...", flush=True)
        results.append(run_suite_program(name))
        print(f"  done in {time.perf_counter() - start:.1f}s")

    print("\n=== Table II: benchmark characteristics ===")
    print(format_table2(results))
    print("\n=== Table III: SFS vs VSFS (time, memory, work) ===")
    print(format_table3(results))

    if all(res.precision_identical() for res in results):
        print("\nprecision check: VSFS identical to SFS on every variable ✓")
    else:
        print("\nprecision check FAILED — VSFS diverged from SFS!")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
