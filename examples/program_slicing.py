#!/usr/bin/env python3
"""Program-slicing client: which statements can influence a dereference?

Computes a backward value-flow slice over the SVFG — the paper's "program
slicing" motivation — and a dead-store report on the same graph.

Run:  python examples/program_slicing.py
"""

from repro import AnalysisPipeline, compile_c
from repro.clients.deadstore import find_dead_stores
from repro.clients.slicer import ValueFlowSlicer
from repro.ir.instructions import LoadInst, StoreInst

SOURCE = r"""
struct packet { int len; struct packet *next; };

struct packet *queue;
struct packet *scratch;

void enqueue(struct packet *p) {
    p->next = queue;
    queue = p;
}

int main() {
    struct packet *a = (struct packet*)malloc(sizeof(struct packet));
    struct packet *b = (struct packet*)malloc(sizeof(struct packet));
    enqueue(a);
    enqueue(b);
    scratch = a;              // dead: nothing ever reads scratch
    struct packet *head;
    head = queue;
    struct packet *second;
    second = head->next;      // <- slice target
    return 0;
}
"""


def main() -> None:
    module = compile_c(SOURCE)
    pipeline = AnalysisPipeline(module)
    svfg = pipeline.svfg()
    slicer = ValueFlowSlicer(svfg)

    # Slice backwards from the final load (head->next).
    main_fn = module.functions["main"]
    loads = [i for i in main_fn.instructions() if isinstance(i, LoadInst)]
    target = loads[-1]
    slice_ids = slicer.backward_slice(target)
    print(f"backward slice from l{target.id} "
          f"({len(slice_ids)} SVFG nodes):")
    print(slicer.describe(slice_ids))

    # Dead stores on the same SVFG.
    report = find_dead_stores(module, svfg)
    print(f"\ndead stores: {len(report)} (observable: {report.observable})")
    for dead in report:
        print(f"  {dead.describe()}")


if __name__ == "__main__":
    main()
