"""Shared fixtures for the benchmark harness.

The suite pipelines (frontend, Andersen, memory SSA) are cached per
benchmark program so that pytest-benchmark timings cover exactly the phase
each bench names — matching the paper's protocol of excluding auxiliary
analysis and SVFG construction from the measured main phase.
"""

import pytest

from repro.bench.workloads import SUITE, suite_program
from repro.pipeline import AnalysisPipeline

#: Programs used by default in the heavier benches.  The full list mirrors
#: the paper's 15; the subset keeps `pytest benchmarks/ --benchmark-only`
#: under a few minutes.  Set REPRO_BENCH_FULL=1 for all 15.
import os

FULL_SUITE = list(SUITE)
DEFAULT_SUITE = (
    FULL_SUITE
    if os.environ.get("REPRO_BENCH_FULL")
    else ["du", "ninja", "bake", "dpkg", "nano", "i3", "psql", "janet", "astyle", "mruby"]
)

_pipelines = {}


def suite_pipeline(name: str) -> AnalysisPipeline:
    """A pipeline with Andersen + memory SSA already built (cached)."""
    pipeline = _pipelines.get(name)
    if pipeline is None:
        pipeline = AnalysisPipeline(suite_program(name))
        pipeline.memssa()
        _pipelines[name] = pipeline
    return pipeline


@pytest.fixture(params=DEFAULT_SUITE)
def bench_name(request):
    return request.param
