"""E2 — Figure 2: the motivating example's storage/propagation counts.

Asserts the paper's exact VSFS numbers on the fragment: **3** points-to
sets stored for object *o* and **2** propagation constraints, versus the
strictly larger SFS counts, at identical precision.
"""

from repro.bench.motivating import run_motivating_example


def bench_motivating_example(benchmark):
    report = benchmark.pedantic(run_motivating_example, rounds=1, iterations=1)

    assert report.vsfs_ptsets_for_o1 == 3
    assert report.vsfs_constraints_for_o1 == 2
    assert report.sfs_ptsets_for_o1 >= 6
    assert report.sfs_propagations_for_o1 >= 6
    assert report.observed["sink_l2"] == {"a"}
    assert report.observed["sink_l4"] == {"a", "b"}

    benchmark.extra_info.update(
        sfs_ptsets=report.sfs_ptsets_for_o1,
        vsfs_ptsets=report.vsfs_ptsets_for_o1,
        sfs_propagations=report.sfs_propagations_for_o1,
        vsfs_constraints=report.vsfs_constraints_for_o1,
    )
