"""E10 — ablation of the delta propagation kernel and points-to repository.

Runs SFS and VSFS in all four (delta × ptrepo) configurations on each
default suite program and checks the optimisations' contract:

- **precision**: every configuration produces a bit-for-bit identical
  top-level snapshot (the kernel and the repository are pure storage /
  scheduling changes);
- **delta kernel**: strictly fewer set unions are applied (both solvers —
  the eager path re-merges a whole mask per propagation target, the kernel
  only touches sets that actually grow), and SFS also performs strictly
  fewer per-(edge, object) propagation visits.  VSFS propagations are
  unchanged by design: its version constraints already fire only on source
  growth;
- **points-to repository**: the counters it cannot change stay identical,
  while distinct stored sets collapse (``unique_ptsets`` ≪
  ``stored_ptsets``) and the memoised pairwise-union cache absorbs most
  union work.

Wall-clock per configuration lands in ``extra_info`` — the counters are
the machine-independent claim; times are reported, not asserted.
"""

import time

from conftest import suite_pipeline

from repro.core.vsfs import VSFSAnalysis
from repro.solvers.sfs import SFSAnalysis

CONFIGS = (  # (label, delta, ptrepo)
    ("eager", False, False),
    ("eager+repo", False, True),
    ("delta", True, False),
    ("delta+repo", True, True),
)


def _run_matrix(pipeline, solver_cls):
    """All four configurations: {label: (stats, snapshot, seconds)}."""
    out = {}
    for label, delta, ptrepo in CONFIGS:
        svfg = pipeline.fresh_svfg()
        start = time.perf_counter()
        result = solver_cls(svfg, delta=delta, ptrepo=ptrepo).run()
        elapsed = time.perf_counter() - start
        out[label] = (result.stats, result.snapshot(), elapsed)
    return out


def _check_matrix(matrix, propagations_strict):
    """The ablation contract (see module docstring)."""
    baseline_snapshot = matrix["eager"][1]
    for label, (__, snapshot, __t) in matrix.items():
        assert snapshot == baseline_snapshot, f"{label} changed precision"

    eager, delta = matrix["eager"][0], matrix["delta"][0]
    # The kernel only removes redundant work — never adds any.
    assert delta.unions < eager.unions
    if propagations_strict:
        assert delta.propagations < eager.propagations
    else:
        assert delta.propagations <= eager.propagations

    # The repository changes storage, not scheduling: work counters match
    # the repo-less run bit for bit.
    for base_label, repo_label in (("eager", "eager+repo"), ("delta", "delta+repo")):
        base, repo = matrix[base_label][0], matrix[repo_label][0]
        assert repo.propagations == base.propagations
        assert repo.unions == base.unions
        assert repo.stored_ptsets == base.stored_ptsets
        assert repo.unique_ptsets <= repo.stored_ptsets


def _extra_info(benchmark, tag, matrix):
    stats = matrix["delta+repo"][0]
    benchmark.extra_info.update({
        f"{tag}_eager_propagations": matrix["eager"][0].propagations,
        f"{tag}_delta_propagations": matrix["delta"][0].propagations,
        f"{tag}_eager_unions": matrix["eager"][0].unions,
        f"{tag}_delta_unions": matrix["delta"][0].unions,
        f"{tag}_unique_ptsets": stats.unique_ptsets,
        f"{tag}_stored_ptsets": stats.stored_ptsets,
        f"{tag}_union_cache_hit_rate": round(stats.union_cache_hit_rate(), 4),
        **{f"{tag}_{label}_s": round(t, 4) for label, (__, __s, t) in matrix.items()},
    })


def bench_delta_prop_sfs(benchmark, bench_name):
    """SFS: delta kernel strictly cuts propagations and unions."""
    pipeline = suite_pipeline(bench_name)
    matrix = benchmark.pedantic(
        _run_matrix, args=(pipeline, SFSAnalysis), rounds=1, iterations=1
    )
    _check_matrix(matrix, propagations_strict=True)
    _extra_info(benchmark, "sfs", matrix)


def bench_delta_prop_vsfs(benchmark, bench_name):
    """VSFS: delta kernel strictly cuts unions (propagations already
    fire only on growth, so they stay put)."""
    pipeline = suite_pipeline(bench_name)
    matrix = benchmark.pedantic(
        _run_matrix, args=(pipeline, VSFSAnalysis), rounds=1, iterations=1
    )
    _check_matrix(matrix, propagations_strict=False)
    _extra_info(benchmark, "vsfs", matrix)
