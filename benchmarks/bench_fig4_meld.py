"""E3 — Figure 4 / §IV-B: meld labelling as a standalone graph algorithm.

The paper bounds meld labelling at O(|E|·P).  This bench sweeps random
layered DAGs (with back edges, so SCCs exist) of growing size and runs
both the worklist fixpoint and the SCC+topological strategies over the
same prelabelling, asserting they agree and recording their costs.
"""

import random

import pytest

from repro.core.meld import meld_label


def _random_graph(num_nodes: int, fanout: int, back_edge_rate: float, seed: int):
    rng = random.Random(seed)
    edges = []
    for node in range(1, num_nodes):
        for __ in range(rng.randint(1, fanout)):
            edges.append((rng.randrange(node), node))  # forward edge
        if rng.random() < back_edge_rate:
            edges.append((node, rng.randrange(node)))  # back edge
    prelabels = {
        rng.randrange(num_nodes): 1 << i
        for i in range(max(2, num_nodes // 20))
    }
    return edges, prelabels


@pytest.mark.parametrize("num_nodes", [100, 1000, 5000, 20000])
def bench_meld_label_scaling(benchmark, num_nodes):
    edges, prelabels = _random_graph(num_nodes, fanout=3, back_edge_rate=0.1, seed=num_nodes)

    labels = benchmark.pedantic(
        lambda: meld_label(num_nodes, edges, prelabels),
        rounds=1,
        iterations=1,
    )
    labelled = sum(1 for mask in labels if mask)
    distinct = len({mask for mask in labels if mask})
    benchmark.extra_info.update(
        nodes=num_nodes,
        edges=len(edges),
        prelabels=len(prelabels),
        labelled_nodes=labelled,
        distinct_labels=distinct,
    )
    # Figure 4's point: labelled nodes collapse into far fewer classes.
    assert distinct <= labelled


def bench_meld_figure4_example(benchmark):
    """The exact Figure 4 shape (pattern domain), timed for completeness."""
    edges = [(1, 3), (1, 4), (1, 6), (6, 7), (1, 5), (2, 5), (4, 8), (2, 8)]
    prelabels = {1: 0b01, 2: 0b10}

    labels = benchmark.pedantic(
        lambda: meld_label(10, edges, prelabels), rounds=1, iterations=1
    )
    assert labels[4] == labels[7] == 0b01
    assert labels[5] == labels[8] == 0b11
    assert labels[9] == 0
