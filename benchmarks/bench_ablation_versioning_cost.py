"""E6 — §V-A claim: versioning is cheap and grows slower than solving.

Sweeps one workload family across sizes and records versioning time next
to the SFS main phase it is traded against.  The paper's observation: the
versioning share of total time shrinks as programs grow (lynx: 3.5h main
phase vs <1min versioning).  Also ablates the two meld strategies.
"""

import pytest

from conftest import suite_pipeline

from repro.core.versioning import ObjectVersioning
from repro.solvers.sfs import SFSAnalysis

SIZES = ["du", "nano", "mruby"]


@pytest.mark.parametrize("name", SIZES)
def bench_versioning_scc(benchmark, name):
    pipeline = suite_pipeline(name)
    svfg = pipeline.svfg()

    versioning = benchmark.pedantic(
        lambda: ObjectVersioning(svfg).run(strategy="scc"), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        bench=name,
        strategy="scc",
        prelabels=versioning.stats.prelabels,
        versions=versioning.stats.versions,
        constraints=versioning.num_constraints(),
    )


@pytest.mark.parametrize("name", SIZES)
def bench_versioning_fixpoint(benchmark, name):
    """Ablation: the naive Figure-8 worklist instead of SCC condensation."""
    pipeline = suite_pipeline(name)
    svfg = pipeline.svfg()

    versioning = benchmark.pedantic(
        lambda: ObjectVersioning(svfg).run(strategy="fixpoint"), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        bench=name,
        strategy="fixpoint",
        meld_steps=versioning.stats.meld_steps,
    )


@pytest.mark.parametrize("name", SIZES)
def bench_versioning_hashcons(benchmark, name):
    """Ablation: hash-consed labels (the paper's §V-B future-work remark:
    'a data structure specifically catered to versioning')."""
    pipeline = suite_pipeline(name)
    svfg = pipeline.svfg()

    versioning = benchmark.pedantic(
        lambda: ObjectVersioning(svfg).run(strategy="hashcons"), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        bench=name,
        strategy="hashcons",
        versions=versioning.stats.versions,
        meld_steps=versioning.stats.meld_steps,
    )


@pytest.mark.parametrize("name", SIZES)
def bench_versioning_share_of_total(benchmark, name):
    """Versioning time relative to the SFS main phase it replaces."""
    pipeline = suite_pipeline(name)

    def measure():
        import time

        svfg = pipeline.fresh_svfg()
        start = time.perf_counter()
        ObjectVersioning(svfg).run()
        versioning_time = time.perf_counter() - start
        sfs_stats = SFSAnalysis(pipeline.fresh_svfg()).run().stats
        return versioning_time, sfs_stats.solve_time

    versioning_time, sfs_time = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(
        bench=name,
        versioning_time=versioning_time,
        sfs_main_time=sfs_time,
        versioning_share=versioning_time / (versioning_time + sfs_time),
    )
    # §V-A shape: versioning never exceeds the SFS main phase on
    # non-trivial programs.
    if name != "du":
        assert versioning_time < sfs_time
