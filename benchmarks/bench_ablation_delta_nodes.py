"""E8 — δ nodes and on-the-fly call graph resolution (§IV-C, Definition 3).

Sweeps the workload generator's indirect-call rate and records how many δ
nodes the SVFG gets, how many call edges the flow-sensitive analysis
resolves on the fly, and how the two solvers compare under heavy dynamic
dispatch.  Shape: δ count and OTF-resolved edges grow with the indirect
rate while SFS ≡ VSFS precision is preserved throughout (asserted).
"""

import pytest

from repro.bench.workloads import WorkloadConfig, generate_program
from repro.core.vsfs import VSFSAnalysis
from repro.pipeline import AnalysisPipeline
from repro.solvers.sfs import SFSAnalysis

RATES = [0.0, 0.15, 0.35, 0.6]


def _config(rate: float) -> WorkloadConfig:
    return WorkloadConfig(
        name=f"delta-{rate}",
        seed=2024,
        num_functions=10,
        stmts_per_function=10,
        num_globals=5,
        num_handlers=3,
        indirect_call_rate=rate,
    )


@pytest.mark.parametrize("rate", RATES)
def bench_otf_resolution(benchmark, rate):
    module = generate_program(_config(rate))
    pipeline = AnalysisPipeline(module)
    pipeline.memssa()

    def run():
        sfs = SFSAnalysis(pipeline.fresh_svfg()).run()
        vsfs = VSFSAnalysis(pipeline.fresh_svfg()).run()
        return sfs, vsfs

    sfs, vsfs = benchmark.pedantic(run, rounds=1, iterations=1)
    svfg = pipeline.svfg()
    benchmark.extra_info.update(
        indirect_rate=rate,
        delta_nodes=len(svfg.delta_nodes),
        otf_resolved=vsfs.stats.indirect_calls_resolved,
        callgraph_edges=vsfs.stats.callgraph_edges,
        vsfs_constraints_after_otf=None,
    )
    assert sfs.snapshot() == vsfs.snapshot(), f"divergence at rate {rate}"
    if rate == 0.0:
        assert len(svfg.delta_nodes) == 0
    else:
        assert len(svfg.delta_nodes) > 0
        assert vsfs.stats.indirect_calls_resolved > 0
