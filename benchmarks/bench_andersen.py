"""Auxiliary-analysis bench: Andersen's solver and its cycle-collapsing
ablation (the optimisation DESIGN.md calls out for the substrate).

Shape: results are identical with and without SCC collapsing; collapsing
never loses precision and pays off as copy-edge cycles appear.
"""

import pytest

from repro.analysis.andersen import AndersenAnalysis
from repro.bench.workloads import suite_program

PROGRAMS = ["du", "nano", "mruby"]


@pytest.mark.parametrize("name", PROGRAMS)
def bench_andersen_with_scc(benchmark, name):
    module = suite_program(name)

    result = benchmark.pedantic(
        lambda: AndersenAnalysis(module, collapse_cycles=True).run(),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        bench=name,
        collapsed_nodes=result.stats.collapsed_nodes,
        copy_edges=result.stats.copy_edges,
        processed=result.stats.processed_nodes,
    )


@pytest.mark.parametrize("name", PROGRAMS)
def bench_andersen_without_scc(benchmark, name):
    module = suite_program(name)

    plain = benchmark.pedantic(
        lambda: AndersenAnalysis(module, collapse_cycles=False).run(),
        rounds=1,
        iterations=1,
    )
    collapsed = AndersenAnalysis(module, collapse_cycles=True).run()
    for var in module.variables:
        assert plain.pts_mask(var) == collapsed.pts_mask(var), repr(var)
    benchmark.extra_info.update(bench=name, processed=plain.stats.processed_nodes)
