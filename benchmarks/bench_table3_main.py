"""E5 — Table III: the paper's headline comparison, SFS vs VSFS.

One benchmark per (program, solver): the measured phase is the solver's
``run()`` on a pre-built SVFG, exactly the paper's "main phase" (plus, for
VSFS, the versioning pre-analysis — reported separately in ``extra_info``
like Table III's "ver." column).

Shape reproduced from the paper: VSFS total time beats SFS and the gap
widens with program size; VSFS performs several-fold fewer indirect
propagations and stores several-fold fewer points-to sets; precision is
identical (asserted).
"""

from conftest import suite_pipeline

from repro.core.vsfs import VSFSAnalysis
from repro.solvers.sfs import SFSAnalysis

_snapshots = {}


def bench_sfs_main_phase(benchmark, bench_name):
    pipeline = suite_pipeline(bench_name)

    def run():
        return SFSAnalysis(pipeline.fresh_svfg()).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.stats
    _snapshots[(bench_name, "sfs")] = result.snapshot()
    benchmark.extra_info.update(
        bench=bench_name,
        analysis="sfs",
        propagations=stats.propagations,
        stored_ptsets=stats.stored_ptsets,
        stored_ptset_bits=stats.stored_ptset_bits,
        strong_updates=stats.strong_updates,
        callgraph_edges=stats.callgraph_edges,
    )


def bench_vsfs_total(benchmark, bench_name):
    """Versioning + main phase (what Table III's 'Time diff.' divides by)."""
    pipeline = suite_pipeline(bench_name)

    def run():
        return VSFSAnalysis(pipeline.fresh_svfg()).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.stats
    benchmark.extra_info.update(
        bench=bench_name,
        analysis="vsfs",
        versioning_time=stats.pre_time,
        main_phase_time=stats.solve_time,
        propagations=stats.propagations,
        stored_ptsets=stats.stored_ptsets,
        stored_ptset_bits=stats.stored_ptset_bits,
        strong_updates=stats.strong_updates,
        callgraph_edges=stats.callgraph_edges,
    )
    sfs_snapshot = _snapshots.get((bench_name, "sfs"))
    if sfs_snapshot is not None:
        assert result.snapshot() == sfs_snapshot, "VSFS diverged from SFS"


def bench_vsfs_main_phase_only(benchmark, bench_name):
    """The solver alone, versioning precomputed (paper's 'VSFS main' column)."""
    pipeline = suite_pipeline(bench_name)
    from repro.core.versioning import version_objects

    svfg = pipeline.fresh_svfg()
    versioning = version_objects(svfg)

    result = benchmark.pedantic(
        lambda: VSFSAnalysis(svfg, versioning=versioning).run(),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        bench=bench_name,
        analysis="vsfs-main",
        propagations=result.stats.propagations,
    )


def bench_andersen_auxiliary(benchmark, bench_name):
    """The stage-1 auxiliary analysis (Table III's 'Andersen' column)."""
    from repro.analysis.andersen import AndersenAnalysis
    from repro.bench.workloads import suite_program

    module = suite_program(bench_name)

    result = benchmark.pedantic(
        lambda: AndersenAnalysis(module).run(), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        bench=bench_name,
        analysis="ander",
        processed_nodes=result.stats.processed_nodes,
        copy_edges=result.stats.copy_edges,
    )
