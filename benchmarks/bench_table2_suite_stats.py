"""E4 — Table II: benchmark characteristics.

For every suite program, measures SVFG construction and records the Table
II columns (#nodes, #direct edges, #indirect edges, top-level and
address-taken variable counts) in the benchmark's ``extra_info``, so
``pytest benchmarks/bench_table2_suite_stats.py --benchmark-only`` prints
both timing and the table data.

Paper shape being reproduced: indirect edges dominate direct edges by one
to two orders of magnitude, and both grow superlinearly with program size.
"""

from conftest import suite_pipeline

from repro.bench.workloads import SUITE, suite_source_loc
from repro.svfg.builder import build_svfg


def bench_svfg_construction(benchmark, bench_name):
    pipeline = suite_pipeline(bench_name)

    svfg = benchmark.pedantic(
        lambda: build_svfg(pipeline.module, pipeline.andersen(), pipeline.memssa()),
        rounds=1,
        iterations=1,
    )
    stats = svfg.stats()
    benchmark.extra_info.update(
        bench=bench_name,
        loc=suite_source_loc(bench_name),
        nodes=stats.num_nodes,
        direct_edges=stats.num_direct_edges,
        indirect_edges=stats.num_indirect_edges,
        top_level_vars=stats.num_top_level_vars,
        address_taken_vars=stats.num_address_taken_vars,
        delta_nodes=stats.num_delta_nodes,
        description=SUITE[bench_name].description,
    )
    # Table II shape: the SVFG is indirect-edge dominated.
    assert stats.num_indirect_edges > stats.num_direct_edges
    assert stats.num_top_level_vars > stats.num_address_taken_vars
