"""E7 — §V-B claim: memory ∝ stored points-to sets; VSFS stores fewer.

Counts the exact storage quantities behind Table III's memory column:
IN/OUT entries (SFS) versus global ``(object, version)`` entries (VSFS),
plus total set bits, on every default suite program.  Also ablates the
points-to set representation (int bit masks vs Python frozensets) to back
the DESIGN.md representation choice.
"""

import random

from conftest import suite_pipeline

from repro.core.vsfs import VSFSAnalysis
from repro.solvers.sfs import SFSAnalysis


def bench_storage_counts(benchmark, bench_name):
    pipeline = suite_pipeline(bench_name)

    def run_both():
        sfs = SFSAnalysis(pipeline.fresh_svfg()).run()
        vsfs = VSFSAnalysis(pipeline.fresh_svfg()).run()
        return sfs.stats, vsfs.stats

    sfs_stats, vsfs_stats = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update(
        bench=bench_name,
        sfs_ptsets=sfs_stats.stored_ptsets,
        vsfs_ptsets=vsfs_stats.stored_ptsets,
        sfs_bits=sfs_stats.stored_ptset_bits,
        vsfs_bits=vsfs_stats.stored_ptset_bits,
        ptset_ratio=sfs_stats.stored_ptsets / max(vsfs_stats.stored_ptsets, 1),
        bits_ratio=sfs_stats.stored_ptset_bits / max(vsfs_stats.stored_ptset_bits, 1),
    )
    # §V-B shape: single-object sparsity stores strictly fewer sets.
    assert vsfs_stats.stored_ptsets < sfs_stats.stored_ptsets
    assert vsfs_stats.stored_ptset_bits <= sfs_stats.stored_ptset_bits


def _random_masks(count, universe, density, seed):
    rng = random.Random(seed)
    masks = []
    for __ in range(count):
        mask = 0
        for __bit in range(int(universe * density)):
            mask |= 1 << rng.randrange(universe)
        masks.append(mask)
    return masks


def bench_representation_int_masks(benchmark):
    """Union-heavy workload on int masks (the chosen representation)."""
    masks = _random_masks(2000, universe=512, density=0.05, seed=1)

    def unions():
        acc = 0
        for mask in masks:
            acc |= mask
        total = 0
        for mask in masks:
            total += 1 if (mask | acc) == acc else 0
        return total

    assert benchmark(unions) == len(masks)


def bench_representation_frozensets(benchmark):
    """The same workload on frozensets — the rejected alternative."""
    masks = _random_masks(2000, universe=512, density=0.05, seed=1)
    sets = [frozenset(i for i in range(512) if mask >> i & 1) for mask in masks]

    def unions():
        acc = frozenset()
        for s in sets:
            acc |= s
        total = 0
        for s in sets:
            total += 1 if s <= acc else 0
        return total

    assert benchmark(unions) == len(sets)
